// cvcp_client: command-line client for cvcp_serve, plus an in-process
// `direct` mode that runs the identical job without a server — the pair
// is the end-to-end determinism check (CI byte-compares their outputs):
//
//   cvcp_client submit --socket S [spec flags] [--out FILE]
//       submit one job, wait for it, print the outcome; --out writes the
//       stored report block (the exact bytes the server persisted)
//   cvcp_client direct [spec flags] [--out FILE] [--threads N]
//       run the same spec in-process via RunJob and write the encoded
//       report — byte-identical to the served one by contract
//   cvcp_client fetch --socket S --job ID [--out FILE]
//       re-fetch any prior version's stored report by job id
//   cvcp_client cancel --socket S --job ID
//       request cooperative cancellation; prints what the request found
//       (cancelled-while-queued / signalled / already-finished)
//   cvcp_client versions --socket S [spec flags]
//       job ids of every stored version of the spec, chain order
//   cvcp_client stats --socket S
//   cvcp_client shutdown --socket S
//
// Spec flags (defaults in core/job.h): --dataset NAME --dataset-seed N
// --dataset-index N --clusterer NAME --scenario labels|constraints
// --label-fraction F --pool-fraction F --constraint-fraction F
// --supervision-seed N --grid "3,6,9" --folds N --stratified
// --cvcp-seed N --deadline-ms N
//
// Robustness flags for submit: --retry N --backoff-ms B retry a
// backpressure rejection (kResourceExhausted only — the one transient
// failure) on a deterministic doubling schedule; a submission that still
// fails on backpressure exits 3 (distinct from exit 1 transport/spec
// errors) so scripts can tell "server busy" from "broken".
// --deadline-ms also applies in direct mode, via a local deadline token.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/strings.h"
#include "service/client.h"
#include "service/dataset_resolver.h"
#include "service/server.h"

namespace {

using namespace cvcp;  // NOLINT

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s submit|direct|fetch|cancel|versions|stats|shutdown "
               "[--socket PATH] [spec flags]\n"
               "run with no arguments after the subcommand for details in "
               "the file header\n",
               argv0);
  return 2;
}

bool ParseU64(const char* text, uint64_t* out) {
  char* end = nullptr;
  *out = std::strtoull(text, &end, 10);
  return end != text && *end == '\0';
}

bool ParseDouble(const char* text, double* out) {
  char* end = nullptr;
  *out = std::strtod(text, &end);
  return end != text && *end == '\0';
}

bool ParseGrid(const std::string& text, std::vector<int>* out) {
  out->clear();
  for (const std::string& part : Split(text, ',')) {
    char* end = nullptr;
    const long value = std::strtol(part.c_str(), &end, 10);
    if (end == part.c_str() || *end != '\0') return false;
    out->push_back(static_cast<int>(value));
  }
  return !out->empty();
}

struct Options {
  std::string socket;
  std::string out;
  uint64_t job_id = 0;
  int threads = 0;
  RetryPolicy retry;
  JobSpec spec;
  bool ok = true;
};

Options ParseOptions(int argc, char** argv, int first) {
  Options options;
  options.spec.param_grid = {3, 6, 9, 12};
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    uint64_t u = 0;
    double d = 0.0;
    if (arg == "--socket" && has_value) {
      options.socket = argv[++i];
    } else if (arg == "--out" && has_value) {
      options.out = argv[++i];
    } else if (arg == "--job" && has_value && ParseU64(argv[++i], &u)) {
      options.job_id = u;
    } else if (arg == "--threads" && has_value && ParseU64(argv[++i], &u)) {
      options.threads = static_cast<int>(u);
    } else if (arg == "--dataset" && has_value) {
      options.spec.dataset = argv[++i];
    } else if (arg == "--dataset-seed" && has_value &&
               ParseU64(argv[++i], &u)) {
      options.spec.dataset_seed = u;
    } else if (arg == "--dataset-index" && has_value &&
               ParseU64(argv[++i], &u)) {
      options.spec.dataset_index = u;
    } else if (arg == "--clusterer" && has_value) {
      options.spec.clusterer = argv[++i];
    } else if (arg == "--scenario" && has_value) {
      const std::string scenario = argv[++i];
      if (scenario == "labels") {
        options.spec.scenario = SupervisionKind::kLabels;
      } else if (scenario == "constraints") {
        options.spec.scenario = SupervisionKind::kConstraints;
      } else {
        options.ok = false;
      }
    } else if (arg == "--label-fraction" && has_value &&
               ParseDouble(argv[++i], &d)) {
      options.spec.label_fraction = d;
    } else if (arg == "--pool-fraction" && has_value &&
               ParseDouble(argv[++i], &d)) {
      options.spec.pool_fraction = d;
    } else if (arg == "--constraint-fraction" && has_value &&
               ParseDouble(argv[++i], &d)) {
      options.spec.constraint_fraction = d;
    } else if (arg == "--supervision-seed" && has_value &&
               ParseU64(argv[++i], &u)) {
      options.spec.supervision_seed = u;
    } else if (arg == "--grid" && has_value &&
               ParseGrid(argv[++i], &options.spec.param_grid)) {
      // parsed in place
    } else if (arg == "--folds" && has_value && ParseU64(argv[++i], &u)) {
      options.spec.n_folds = static_cast<int>(u);
    } else if (arg == "--stratified") {
      options.spec.stratified = true;
    } else if (arg == "--cvcp-seed" && has_value && ParseU64(argv[++i], &u)) {
      options.spec.cvcp_seed = u;
    } else if (arg == "--deadline-ms" && has_value &&
               ParseU64(argv[++i], &u)) {
      options.spec.deadline_ms = u;
    } else if (arg == "--retry" && has_value && ParseU64(argv[++i], &u)) {
      options.retry.max_retries = static_cast<int>(u);
    } else if (arg == "--backoff-ms" && has_value && ParseU64(argv[++i], &u)) {
      options.retry.backoff_ms = static_cast<int>(u);
    } else {
      options.ok = false;
    }
    if (!options.ok) {
      std::fprintf(stderr, "cvcp_client: bad argument: %s\n", arg.c_str());
      return options;
    }
  }
  return options;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "cvcp_client: %s\n", status.ToString().c_str());
  return 1;
}

/// Backpressure exits 3 so scripts can distinguish "server busy, try
/// later" from transport or spec failures (exit 1).
int FailSubmit(const Status& status) {
  if (status.code() == StatusCode::kResourceExhausted) {
    std::fprintf(stderr,
                 "cvcp_client: server busy (backpressure): %s\n"
                 "cvcp_client: retries exhausted; try again later or raise "
                 "--retry/--backoff-ms\n",
                 status.ToString().c_str());
    return 3;
  }
  return Fail(status);
}

int WriteOut(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cvcp_client: cannot open %s\n", path.c_str());
    return 1;
  }
  const size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (written != bytes.size()) {
    std::fprintf(stderr, "cvcp_client: short write to %s\n", path.c_str());
    return 1;
  }
  return 0;
}

void PrintReport(const CvcpReport& report) {
  for (const CvcpParamScore& score : report.scores) {
    std::printf("param %3d  score %s  valid_folds %d\n", score.param,
                FormatDouble(score.score).c_str(), score.valid_folds);
  }
  std::printf("best_param %d  best_score %s\n", report.best_param,
              FormatDouble(report.best_score).c_str());
}

int FinishReport(const Options& options, const ReportReply& reply) {
  std::printf("job %llu  version %u  spec_hash %016llx  %zu bytes\n",
              static_cast<unsigned long long>(reply.job_id), reply.version,
              static_cast<unsigned long long>(reply.spec_hash),
              reply.report_bytes.size());
  Result<CvcpReport> report = DecodeCvcpReport(reply.report_bytes);
  if (!report.ok()) return Fail(report.status());
  PrintReport(report.value());
  if (!options.out.empty()) return WriteOut(options.out, reply.report_bytes);
  return 0;
}

int RunSubmit(const Options& options) {
  Result<Client> client = Client::Connect(options.socket);
  if (!client.ok()) return Fail(client.status());
  const auto on_retry = [](int attempt, int64_t delay_ms) {
    std::fprintf(stderr,
                 "cvcp_client: server busy, retry %d in %lld ms\n", attempt,
                 static_cast<long long>(delay_ms));
  };
  Result<SubmitReply> submitted =
      client->SubmitWithRetry(options.spec, options.retry, on_retry);
  if (!submitted.ok()) return FailSubmit(submitted.status());
  Result<ReportReply> reply = client->Wait(submitted->job_id);
  if (!reply.ok()) return Fail(reply.status());
  return FinishReport(options, reply.value());
}

int RunDirect(const Options& options) {
  DatasetResolver resolver;
  Result<const Dataset*> data = resolver.Resolve(options.spec);
  if (!data.ok()) return Fail(data.status());
  JobContext context;
  context.exec.threads = options.threads;
  // Honor --deadline-ms without a server: the same cell-boundary checks
  // fire off a local deadline token.
  CancelSource deadline;
  if (options.spec.deadline_ms > 0) {
    deadline.SetDeadlineAfterMs(options.spec.deadline_ms);
    context.exec.cancel = deadline.token();
  }
  Result<CvcpReport> report = RunJob(**data, options.spec, context);
  if (!report.ok()) return Fail(report.status());
  const std::string bytes = EncodeCvcpReport(report.value());
  std::printf("direct  spec_hash %016llx  %zu bytes\n",
              static_cast<unsigned long long>(JobSpecHash(options.spec)),
              bytes.size());
  PrintReport(report.value());
  if (!options.out.empty()) return WriteOut(options.out, bytes);
  return 0;
}

int RunFetch(const Options& options) {
  Result<Client> client = Client::Connect(options.socket);
  if (!client.ok()) return Fail(client.status());
  Result<ReportReply> reply = client->Fetch(options.job_id);
  if (!reply.ok()) return Fail(reply.status());
  return FinishReport(options, reply.value());
}

int RunCancel(const Options& options) {
  Result<Client> client = Client::Connect(options.socket);
  if (!client.ok()) return Fail(client.status());
  Result<CancelReply> reply = client->Cancel(options.job_id);
  if (!reply.ok()) return Fail(reply.status());
  const char* outcome = "already-finished";
  switch (reply->outcome) {
    case CancelOutcome::kCancelledWhileQueued:
      outcome = "cancelled-while-queued";
      break;
    case CancelOutcome::kSignalled:
      outcome = "signalled";
      break;
    case CancelOutcome::kAlreadyFinished:
      break;
  }
  std::printf("job %llu  %s\n",
              static_cast<unsigned long long>(options.job_id), outcome);
  return 0;
}

int RunVersions(const Options& options) {
  Result<Client> client = Client::Connect(options.socket);
  if (!client.ok()) return Fail(client.status());
  const uint64_t spec_hash = JobSpecHash(options.spec);
  Result<std::vector<uint64_t>> versions = client->Versions(spec_hash);
  if (!versions.ok()) return Fail(versions.status());
  std::printf("spec_hash %016llx  %zu versions\n",
              static_cast<unsigned long long>(spec_hash), versions->size());
  for (size_t i = 0; i < versions->size(); ++i) {
    std::printf("version %zu  job %llu\n", i + 1,
                static_cast<unsigned long long>((*versions)[i]));
  }
  return 0;
}

int RunStats(const Options& options) {
  Result<Client> client = Client::Connect(options.socket);
  if (!client.ok()) return Fail(client.status());
  Result<StatsReply> stats = client->Stats();
  if (!stats.ok()) return Fail(stats.status());
  const StatsReply& s = stats.value();
  std::printf(
      "queue_depth %llu\nrunning %llu\naccepted %llu\n"
      "rejected_queue_full %llu\nrejected_memory %llu\ncompleted %llu\n"
      "failed %llu\ninflight_bytes %llu\ndistance_builds %llu\n"
      "distance_loads %llu\ndistance_hits %llu\nmodel_builds %llu\n"
      "model_loads %llu\nmodel_hits %llu\ndisk_hits %llu\n"
      "disk_misses %llu\nresults_recovered %llu\nresults_corrupt %llu\n"
      "results_stored %llu\ncancelled %llu\ndeadline_exceeded %llu\n"
      "temps_swept %llu\n",
      static_cast<unsigned long long>(s.queue_depth),
      static_cast<unsigned long long>(s.running),
      static_cast<unsigned long long>(s.accepted),
      static_cast<unsigned long long>(s.rejected_queue_full),
      static_cast<unsigned long long>(s.rejected_memory),
      static_cast<unsigned long long>(s.completed),
      static_cast<unsigned long long>(s.failed),
      static_cast<unsigned long long>(s.inflight_bytes),
      static_cast<unsigned long long>(s.distance_builds),
      static_cast<unsigned long long>(s.distance_loads),
      static_cast<unsigned long long>(s.distance_hits),
      static_cast<unsigned long long>(s.model_builds),
      static_cast<unsigned long long>(s.model_loads),
      static_cast<unsigned long long>(s.model_hits),
      static_cast<unsigned long long>(s.disk_hits),
      static_cast<unsigned long long>(s.disk_misses),
      static_cast<unsigned long long>(s.results_recovered),
      static_cast<unsigned long long>(s.results_corrupt),
      static_cast<unsigned long long>(s.results_stored),
      static_cast<unsigned long long>(s.cancelled),
      static_cast<unsigned long long>(s.deadline_exceeded),
      static_cast<unsigned long long>(s.temps_swept));
  return 0;
}

int RunShutdown(const Options& options) {
  Result<Client> client = Client::Connect(options.socket);
  if (!client.ok()) return Fail(client.status());
  const Status status = client->Shutdown();
  if (!status.ok()) return Fail(status);
  std::printf("shutdown requested\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage(argv[0]);
  const std::string command = argv[1];
  const Options options = ParseOptions(argc, argv, 2);
  if (!options.ok) return Usage(argv[0]);
  const bool needs_socket = command != "direct";
  if (needs_socket && options.socket.empty()) {
    std::fprintf(stderr, "cvcp_client: --socket is required\n");
    return 2;
  }
  if (command == "submit") return RunSubmit(options);
  if (command == "direct") return RunDirect(options);
  if (command == "fetch") return RunFetch(options);
  if (command == "cancel") return RunCancel(options);
  if (command == "versions") return RunVersions(options);
  if (command == "stats") return RunStats(options);
  if (command == "shutdown") return RunShutdown(options);
  return Usage(argv[0]);
}
