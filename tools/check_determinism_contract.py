#!/usr/bin/env python3
"""Determinism-contract linter for the CVCP tree.

The engine promises bit-identical results across thread counts, runs,
and (for the fixed-lane kernels) across SIMD architectures. That
contract is easy to break silently: a stray `std::fma` in a kernel, a
TU compiled without `-ffp-contract=off`, a float sum folded over an
unordered container, an unseeded RNG. This linter encodes the contract
as mechanical rules over the source tree so violations fail CI instead
of surfacing as cross-machine diffs months later.

Rules (ids are stable; see --list-rules):

  kernel-fp-contract    every distance-kernel TU must be compiled with
                        -ffp-contract=off (checked in CMakeLists.txt)
  fast-math             no -ffast-math / -Ofast / -funsafe-math-
                        optimizations / -ffp-contract=fast anywhere in
                        the build configuration
  kernel-fma            kernel TUs must not call std::fma/fmaf or FMA
                        intrinsics (contraction must stay impossible
                        even if flags regress)
  std-reduce            no std::reduce / std::transform_reduce /
                        std::execution outside the kernel layer
                        (unordered reduction is order-nondeterministic)
  unordered-float-accum no `+=` accumulation inside a range-for over an
                        unordered container (iteration order is
                        unspecified; float addition is not associative)
  raw-random            no rand()/srand()/std::random_device/time(...)
                        seeding / default-constructed mt19937 outside
                        src/common/rng.* — all randomness must flow
                        through the seeded, forkable cvcp::Rng
  reduction-allowlist   every inline-lambda ParallelFor body that
                        mutates shared state with a reduction marker
                        (+=, -=, *=, /=, fetch_add, fetch_sub,
                        push_back, emplace_back) must carry a
                        `// determinism: reduction(<tag>)` annotation
                        whose tag is registered (with an
                        order-independence argument) in
                        tools/determinism_allowlist.txt; stale
                        allowlist tags are also reported

Suppressions: a finding on line N is suppressed when line N or line
N-1 contains

    determinism: allow(<rule-id>) -- <justification>

The justification text is mandatory (the linter rejects a bare allow).

Exit status: 0 when no findings, 1 when findings, 2 on usage errors.
`--format json` emits {"findings": [...], "checked_files": N} for
machine consumption.
"""

import argparse
import json
import os
import re
import sys

# --------------------------------------------------------------------------
# Tree layout knobs.

KERNEL_GLOB_RE = re.compile(r"distance_kernels[A-Za-z0-9_]*\.cc$")
KERNEL_DIR = os.path.join("src", "common")
RNG_EXEMPT_RE = re.compile(r"(^|/)rng\.(h|cc)$")
ALLOWLIST_REL = os.path.join("tools", "determinism_allowlist.txt")

SOURCE_DIRS = ("src", "bench", "tests", "tools")
SOURCE_EXTS = (".cc", ".h")

RULES = {
    "kernel-fp-contract": "kernel TU missing -ffp-contract=off in CMake",
    "fast-math": "value-unsafe FP flag in build configuration",
    "kernel-fma": "fma call/intrinsic inside a fixed-lane kernel TU",
    "std-reduce": "std::reduce/transform_reduce/execution outside kernels",
    "unordered-float-accum": "+= accumulation over unordered iteration",
    "raw-random": "non-Rng randomness or time-based seeding",
    "reduction-allowlist": "ParallelFor reduction not in allowlist",
}

SUPPRESS_RE = re.compile(
    r"determinism:\s*allow\(([a-z-]+)\)\s*(?:--|—|:)?\s*(.*)")
REDUCTION_TAG_RE = re.compile(r"determinism:\s*reduction\(([A-Za-z0-9_.-]+)\)")


class Finding:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def as_dict(self):
        return {
            "rule": self.rule,
            "file": self.path,
            "line": self.line,
            "message": self.message,
        }

    def render(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def read_lines(abspath):
    with open(abspath, "r", encoding="utf-8", errors="replace") as f:
        return f.read().splitlines()


def iter_source_files(root):
    for top in SOURCE_DIRS:
        base = os.path.join(root, top)
        if not os.path.isdir(base):
            continue
        for dirpath, _dirnames, filenames in os.walk(base):
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXTS):
                    abspath = os.path.join(dirpath, name)
                    yield os.path.relpath(abspath, root)


def is_kernel_tu(relpath):
    return (os.path.dirname(relpath) == KERNEL_DIR
            and KERNEL_GLOB_RE.search(os.path.basename(relpath)) is not None)


def strip_line_comment(line):
    """Drops //-comments so rules don't fire on prose. String literals in
    this tree never contain the flagged tokens, so no lexer is needed."""
    idx = line.find("//")
    return line if idx < 0 else line[:idx]


# --------------------------------------------------------------------------
# Build-configuration rules (CMake).

CMAKE_FAST_MATH_RE = re.compile(
    r"-ffast-math|-Ofast|-funsafe-math-optimizations|-ffp-contract=fast")


def check_build_config(root, findings):
    """kernel-fp-contract + fast-math over CMakeLists.txt / *.cmake /
    CMakePresets.json."""
    cmake_files = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames
                       if not d.startswith((".", "build"))]
        for name in filenames:
            if name == "CMakeLists.txt" or name.endswith(".cmake") \
                    or name == "CMakePresets.json":
                cmake_files.append(
                    os.path.relpath(os.path.join(dirpath, name), root))

    for rel in sorted(cmake_files):
        lines = read_lines(os.path.join(root, rel))
        for i, line in enumerate(lines, 1):
            body = line.split("#", 1)[0]
            if CMAKE_FAST_MATH_RE.search(body):
                findings.append(Finding(
                    "fast-math", rel, i,
                    "value-unsafe floating-point flag "
                    f"'{CMAKE_FAST_MATH_RE.search(body).group(0)}' breaks "
                    "the bit-identical-results contract"))

    # Every kernel TU on disk must appear in a set_source_files_properties
    # block (in the top-level CMakeLists.txt) whose COMPILE_OPTIONS
    # include -ffp-contract=off.
    kernel_tus = [rel for rel in iter_source_files(root) if is_kernel_tu(rel)]
    top_cml = os.path.join(root, "CMakeLists.txt")
    cml_text = ""
    if os.path.isfile(top_cml):
        cml_text = "\n".join(read_lines(top_cml))

    covered = set()
    for m in re.finditer(
            r"set_source_files_properties\s*\(([^)]*)\)", cml_text,
            re.DOTALL):
        block = m.group(1)
        if "-ffp-contract=off" not in block:
            continue
        for tu in kernel_tus:
            if tu.replace(os.sep, "/") in block.replace("\\", "/"):
                covered.add(tu)

    for tu in kernel_tus:
        if tu not in covered:
            findings.append(Finding(
                "kernel-fp-contract", "CMakeLists.txt", 1,
                f"kernel TU {tu} is not compiled with -ffp-contract=off "
                "(add it to the set_source_files_properties block)"))


# --------------------------------------------------------------------------
# Source rules.

FMA_RE = re.compile(
    r"std::fmaf?\b|(?<![\w.])fmaf?\s*\(|_mm\d*_(?:mask_)?f[n]?m(?:add|sub)|"
    r"\bvfma|\bvmla")
STD_REDUCE_RE = re.compile(
    r"std::reduce\b|std::transform_reduce\b|std::execution\b")
RAW_RANDOM_RES = [
    (re.compile(r"(?<![\w:.])rand\s*\(\s*\)"), "rand()"),
    (re.compile(r"(?<![\w:.])srand\s*\("), "srand()"),
    (re.compile(r"std::random_device\b|(?<![\w:])random_device\b"),
     "std::random_device"),
    (re.compile(r"(?<![\w:.>])time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"),
     "time(...) seeding"),
    (re.compile(r"mt19937(?:_64)?\s+\w+\s*;"),
     "default-seeded mt19937"),
    (re.compile(r"mt19937(?:_64)?\s*\{\s*\}"),
     "default-seeded mt19937"),
]
UNORDERED_DECL_RE = re.compile(
    r"unordered_(?:map|set|multimap|multiset)\s*<[^;{}]*?>\s*&?\s*"
    r"(\w+)\s*[;={(,)]")
RANGE_FOR_RE = re.compile(r"for\s*\([^;()]*?:\s*(\w+)\s*\)")
ACCUM_RE = re.compile(r"(?<![<>=!+\-*/])(?:\+=|-=|\*=|/=)")
# A reduction marker plus its assignment target: `x += ...`,
# `x.fetch_add(...)`, `x->push_back(...)`, `x[i] += ...`. The captured
# base identifier lets the scanner skip lambda-local variables (a local
# is per-iteration state, deterministic by construction).
REDUCTION_MARKER_RE = re.compile(
    r"\b(\w+)(?:\[[^\]]*\])?(?:\s*(?:\.|->)\s*\w+)*\s*"
    r"(?:\+=|-=|\*=|/=)(?!=)|"
    r"\b(\w+)(?:\[[^\]]*\])?\s*(?:\.|->)\s*"
    r"(?:fetch_add|fetch_sub|push_back|emplace_back)\s*\(")
# Local declarations inside a lambda body (common spellings only —
# enough to recognize per-iteration scratch state).
LOCAL_DECL_RE = re.compile(
    r"(?:^|[{;(])\s*(?:const\s+)?"
    r"(?:auto|bool|int|long|short|char|unsigned|float|double|size_t|"
    r"u?int\d+_t|std?::?\w+(?:<[^;{}()]*>)?)\s*[*&]?\s+"
    r"(\w+)\s*[=;{]", re.MULTILINE)


def line_of_offset(text, offset):
    return text.count("\n", 0, offset) + 1


def match_braces(text, open_idx):
    """Returns the index one past the brace that closes text[open_idx]
    ('{' or '('), or len(text) when unbalanced."""
    pairs = {"{": "}", "(": ")"}
    close = pairs[text[open_idx]]
    depth = 0
    for i in range(open_idx, len(text)):
        c = text[i]
        if c == text[open_idx]:
            depth += 1
        elif c == close:
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def check_source_file(root, rel, allow_tags, used_tags, findings):
    lines = read_lines(os.path.join(root, rel))
    kernel = is_kernel_tu(rel)
    rng_exempt = RNG_EXEMPT_RE.search(rel.replace(os.sep, "/")) is not None
    in_tools = rel.split(os.sep, 1)[0] == "tools"

    stripped = [strip_line_comment(l) for l in lines]
    text = "\n".join(stripped)

    for i, body in enumerate(stripped, 1):
        if kernel and FMA_RE.search(body):
            findings.append(Finding(
                "kernel-fma", rel, i,
                "fused-multiply-add inside a kernel TU: contraction "
                "changes results across architectures"))
        if not kernel and STD_REDUCE_RE.search(body):
            findings.append(Finding(
                "std-reduce", rel, i,
                "unordered reduction primitive outside the kernel layer; "
                "use a slot-per-item ParallelFor plus an ordered fold"))
        if not rng_exempt and not in_tools:
            for pattern, what in RAW_RANDOM_RES:
                if pattern.search(body):
                    findings.append(Finding(
                        "raw-random", rel, i,
                        f"{what}: all randomness must flow through the "
                        "seeded cvcp::Rng (src/common/rng.h)"))

    # unordered-float-accum: a `+=` inside a range-for over a variable
    # declared as an unordered container in this file.
    unordered_names = set(UNORDERED_DECL_RE.findall(text))
    if unordered_names:
        for m in RANGE_FOR_RE.finditer(text):
            if m.group(1) not in unordered_names:
                continue
            brace = text.find("{", m.end())
            if brace < 0:
                continue
            body_text = text[brace:match_braces(text, brace)]
            acc = ACCUM_RE.search(body_text)
            if acc:
                findings.append(Finding(
                    "unordered-float-accum", rel,
                    line_of_offset(text, brace + acc.start()),
                    f"accumulation inside iteration over unordered "
                    f"container '{m.group(1)}': iteration order is "
                    "unspecified and float addition is not associative"))

    # reduction-allowlist: inline-lambda ParallelFor bodies with
    # reduction markers need a registered tag. Named-callable sites are
    # out of scanning reach (documented limitation) — the callable's own
    # body is still covered by the rules above when it lives in a
    # scanned file.
    if rel != os.path.join("src", "common", "parallel.cc") and not in_tools:
        for m in re.finditer(r"\bParallelFor\s*\(", text):
            call_end = match_braces(text, m.end() - 1)
            call_text = text[m.start():call_end]
            lam = re.search(r"\[[^\]]*\]\s*\([^)]*\)\s*(?:mutable\s*)?\{",
                            call_text)
            if not lam:
                continue
            lam_open = m.start() + lam.end() - 1
            lam_body = text[lam_open:match_braces(text, lam_open)]
            locals_declared = set(LOCAL_DECL_RE.findall(lam_body))
            marker = None
            for cand in REDUCTION_MARKER_RE.finditer(lam_body):
                target = cand.group(1) or cand.group(2)
                if target not in locals_declared:
                    marker = cand
                    break
            if marker is None:
                continue
            # Look for the annotation in the original (comment-bearing)
            # lines around the call site.
            call_line = line_of_offset(text, m.start())
            window = "\n".join(
                lines[max(0, call_line - 4):line_of_offset(text, call_end)])
            tag_m = REDUCTION_TAG_RE.search(window)
            marker_line = line_of_offset(text, lam_open + marker.start())
            if not tag_m:
                findings.append(Finding(
                    "reduction-allowlist", rel, marker_line,
                    f"ParallelFor lambda mutates shared state "
                    f"('{marker.group(0).strip()}') without a "
                    "'determinism: reduction(<tag>)' annotation"))
            elif tag_m.group(1) not in allow_tags:
                findings.append(Finding(
                    "reduction-allowlist", rel, marker_line,
                    f"reduction tag '{tag_m.group(1)}' is not registered "
                    f"in {ALLOWLIST_REL}"))
            else:
                used_tags.add(tag_m.group(1))


def load_allowlist(root, findings):
    """tools/determinism_allowlist.txt: `<tag>: <order-independence
    argument>` per line; '#' comments."""
    tags = {}
    rel = ALLOWLIST_REL
    path = os.path.join(root, rel)
    if not os.path.isfile(path):
        return tags
    for i, line in enumerate(read_lines(path), 1):
        body = line.split("#", 1)[0].strip()
        if not body:
            continue
        if ":" not in body:
            findings.append(Finding(
                "reduction-allowlist", rel, i,
                "malformed allowlist line (want '<tag>: <argument>')"))
            continue
        tag, arg = body.split(":", 1)
        tag, arg = tag.strip(), arg.strip()
        if not arg:
            findings.append(Finding(
                "reduction-allowlist", rel, i,
                f"tag '{tag}' has no order-independence argument"))
            continue
        tags[tag] = i
    return tags


def apply_suppressions(root, findings):
    """Filters findings whose line (or the one above) carries a valid
    allow() comment; flags bare allows with no justification."""
    kept = []
    cache = {}
    for f in findings:
        path = os.path.join(root, f.path)
        if f.path not in cache:
            cache[f.path] = read_lines(path) if os.path.isfile(path) else []
        lines = cache[f.path]
        suppressed = False
        for ln in (f.line, f.line - 1):
            if 1 <= ln <= len(lines):
                m = SUPPRESS_RE.search(lines[ln - 1])
                if m and m.group(1) == f.rule:
                    if not m.group(2).strip():
                        kept.append(Finding(
                            f.rule, f.path, ln,
                            "suppression without justification text "
                            "(write 'determinism: allow(rule) -- why')"))
                    suppressed = True
                    break
        if not suppressed:
            kept.append(f)
    return kept


def run(root):
    findings = []
    allow_tags = load_allowlist(root, findings)
    used_tags = set()

    check_build_config(root, findings)

    checked = 0
    for rel in iter_source_files(root):
        checked += 1
        check_source_file(root, rel, allow_tags, used_tags, findings)

    for tag, line in sorted(allow_tags.items()):
        if tag not in used_tags:
            findings.append(Finding(
                "reduction-allowlist", ALLOWLIST_REL, line,
                f"stale allowlist tag '{tag}': no annotated ParallelFor "
                "site references it"))

    findings = apply_suppressions(root, findings)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    # Nested lambdas can report one marker from two enclosing scans;
    # collapse exact duplicates.
    unique, seen = [], set()
    for f in findings:
        key = (f.rule, f.path, f.line, f.message)
        if key not in seen:
            seen.add(key)
            unique.append(f)
    return unique, checked


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="CVCP determinism-contract linter")
    parser.add_argument("--root", default=".",
                        help="tree root (default: cwd)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, desc in sorted(RULES.items()):
            print(f"{rule:24s} {desc}")
        return 0

    root = os.path.abspath(args.root)
    if not os.path.isdir(root):
        print(f"error: no such directory: {root}", file=sys.stderr)
        return 2

    findings, checked = run(root)

    if args.format == "json":
        print(json.dumps(
            {"findings": [f.as_dict() for f in findings],
             "checked_files": checked},
            indent=2))
    else:
        for f in findings:
            print(f.render())
        print(f"{len(findings)} finding(s) across {checked} checked "
              "file(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
