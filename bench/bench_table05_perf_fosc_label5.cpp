// bench_table05_perf_fosc_label5: reproduces Table 5 of the paper.
#include "harness/options.h"
#include "harness/paper_bench.h"

int main(int argc, char** argv) {
  using namespace cvcp::bench;
  const BenchOptions options = ParseBenchOptions(argc, argv);
  PrintBanner(options, "Table 5: FOSC-OPTICSDend (label scenario) — average performance, 5% labeled objects", "Table 5");
  PaperBenchContext ctx = MakeContext(options);
  RunPerformanceTable(ctx, BenchAlgo::kFosc, Scenario::kLabels, 0.05,
                      "Table 5: FOSC-OPTICSDend (label scenario) — average performance, 5% labeled objects");
  PrintStoreStats(ctx);
  return 0;
}
