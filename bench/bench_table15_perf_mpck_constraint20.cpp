// bench_table15_perf_mpck_constraint20: reproduces Table 15 of the paper.
#include "harness/options.h"
#include "harness/paper_bench.h"

int main(int argc, char** argv) {
  using namespace cvcp::bench;
  const BenchOptions options = ParseBenchOptions(argc, argv);
  PrintBanner(options, "Table 15: MPCKmeans (constraint scenario) — average performance, 20% of constraint pool", "Table 15");
  PaperBenchContext ctx = MakeContext(options);
  RunPerformanceTable(ctx, BenchAlgo::kMpck, Scenario::kConstraints, 0.2,
                      "Table 15: MPCKmeans (constraint scenario) — average performance, 20% of constraint pool");
  PrintStoreStats(ctx);
  return 0;
}
