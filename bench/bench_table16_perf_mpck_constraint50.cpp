// bench_table16_perf_mpck_constraint50: reproduces Table 16 of the paper.
#include "harness/options.h"
#include "harness/paper_bench.h"

int main(int argc, char** argv) {
  using namespace cvcp::bench;
  const BenchOptions options = ParseBenchOptions(argc, argv);
  PrintBanner(options, "Table 16: MPCKmeans (constraint scenario) — average performance, 50% of constraint pool", "Table 16");
  PaperBenchContext ctx = MakeContext(options);
  RunPerformanceTable(ctx, BenchAlgo::kMpck, Scenario::kConstraints, 0.5,
                      "Table 16: MPCKmeans (constraint scenario) — average performance, 50% of constraint pool");
  PrintStoreStats(ctx);
  return 0;
}
