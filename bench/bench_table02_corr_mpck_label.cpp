// bench_table02_corr_mpck_label: reproduces Table 2 of the paper.
#include "harness/options.h"
#include "harness/paper_bench.h"

int main(int argc, char** argv) {
  using namespace cvcp::bench;
  const BenchOptions options = ParseBenchOptions(argc, argv);
  PrintBanner(options, "Table 2: MPCKMeans (label scenario) — correlation of internal scores with Overall F-Measure", "Table 2");
  PaperBenchContext ctx = MakeContext(options);
  RunCorrelationTable(ctx, BenchAlgo::kMpck, Scenario::kLabels,
                      {0.05, 0.10, 0.20},
                      "Table 2: MPCKMeans (label scenario) — correlation of internal scores with Overall F-Measure");
  PrintStoreStats(ctx);
  return 0;
}
