// bench_fig10_box_mpck_label: reproduces Figure 10 of the paper.
#include "harness/options.h"
#include "harness/paper_bench.h"

int main(int argc, char** argv) {
  using namespace cvcp::bench;
  const BenchOptions options = ParseBenchOptions(argc, argv);
  PrintBanner(options, "Figure 10: MPCKmeans (label scenario) — ALOI quality distributions, CVCP vs Expected vs Silhouette", "Figure 10");
  PaperBenchContext ctx = MakeContext(options);
  RunBoxplotFigure(ctx, BenchAlgo::kMpck, Scenario::kLabels,
                   {0.05, 0.10, 0.20},
                   "Figure 10: MPCKmeans (label scenario) — ALOI quality distributions, CVCP vs Expected vs Silhouette");
  PrintStoreStats(ctx);
  return 0;
}
