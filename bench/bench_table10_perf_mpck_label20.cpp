// bench_table10_perf_mpck_label20: reproduces Table 10 of the paper.
#include "harness/options.h"
#include "harness/paper_bench.h"

int main(int argc, char** argv) {
  using namespace cvcp::bench;
  const BenchOptions options = ParseBenchOptions(argc, argv);
  PrintBanner(options, "Table 10: MPCKmeans (label scenario) — average performance, 20% labeled objects", "Table 10");
  PaperBenchContext ctx = MakeContext(options);
  RunPerformanceTable(ctx, BenchAlgo::kMpck, Scenario::kLabels, 0.2,
                      "Table 10: MPCKmeans (label scenario) — average performance, 20% labeled objects");
  PrintStoreStats(ctx);
  return 0;
}
