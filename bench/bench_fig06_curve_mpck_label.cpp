// bench_fig06_curve_mpck_label: reproduces Figure 6 of the paper.
#include "harness/options.h"
#include "harness/paper_bench.h"

int main(int argc, char** argv) {
  using namespace cvcp::bench;
  const BenchOptions options = ParseBenchOptions(argc, argv);
  PrintBanner(options, "Figure 6: MPCKmeans (label scenario) — internal vs external curves, representative ALOI set, 10% labels", "Figure 6");
  PaperBenchContext ctx = MakeContext(options);
  RunCurveFigure(ctx, BenchAlgo::kMpck, Scenario::kLabels, 0.1,
                 "Figure 6: MPCKmeans (label scenario) — internal vs external curves, representative ALOI set, 10% labels");
  PrintStoreStats(ctx);
  return 0;
}
