// bench_fig11_box_fosc_constraint: reproduces Figure 11 of the paper.
#include "harness/options.h"
#include "harness/paper_bench.h"

int main(int argc, char** argv) {
  using namespace cvcp::bench;
  const BenchOptions options = ParseBenchOptions(argc, argv);
  PrintBanner(options, "Figure 11: FOSC-OPTICSDend (constraint scenario) — ALOI quality distributions, CVCP vs Expected", "Figure 11");
  PaperBenchContext ctx = MakeContext(options);
  RunBoxplotFigure(ctx, BenchAlgo::kFosc, Scenario::kConstraints,
                   {0.10, 0.20, 0.50},
                   "Figure 11: FOSC-OPTICSDend (constraint scenario) — ALOI quality distributions, CVCP vs Expected");
  PrintStoreStats(ctx);
  return 0;
}
