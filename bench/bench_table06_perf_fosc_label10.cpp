// bench_table06_perf_fosc_label10: reproduces Table 6 of the paper.
#include "harness/options.h"
#include "harness/paper_bench.h"

int main(int argc, char** argv) {
  using namespace cvcp::bench;
  const BenchOptions options = ParseBenchOptions(argc, argv);
  PrintBanner(options, "Table 6: FOSC-OPTICSDend (label scenario) — average performance, 10% labeled objects", "Table 6");
  PaperBenchContext ctx = MakeContext(options);
  RunPerformanceTable(ctx, BenchAlgo::kFosc, Scenario::kLabels, 0.1,
                      "Table 6: FOSC-OPTICSDend (label scenario) — average performance, 10% labeled objects");
  PrintStoreStats(ctx);
  return 0;
}
