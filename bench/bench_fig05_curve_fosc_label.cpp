// bench_fig05_curve_fosc_label: reproduces Figure 5 of the paper.
#include "harness/options.h"
#include "harness/paper_bench.h"

int main(int argc, char** argv) {
  using namespace cvcp::bench;
  const BenchOptions options = ParseBenchOptions(argc, argv);
  PrintBanner(options, "Figure 5: FOSC-OPTICSDend (label scenario) — internal vs external curves, representative ALOI set, 10% labels", "Figure 5");
  PaperBenchContext ctx = MakeContext(options);
  RunCurveFigure(ctx, BenchAlgo::kFosc, Scenario::kLabels, 0.1,
                 "Figure 5: FOSC-OPTICSDend (label scenario) — internal vs external curves, representative ALOI set, 10% labels");
  PrintStoreStats(ctx);
  return 0;
}
