// bench_fig08_curve_mpck_constraint: reproduces Figure 8 of the paper.
#include "harness/options.h"
#include "harness/paper_bench.h"

int main(int argc, char** argv) {
  using namespace cvcp::bench;
  const BenchOptions options = ParseBenchOptions(argc, argv);
  PrintBanner(options, "Figure 8: MPCKmeans (constraint scenario) — internal vs external curves, representative ALOI set, 10% of pool", "Figure 8");
  PaperBenchContext ctx = MakeContext(options);
  RunCurveFigure(ctx, BenchAlgo::kMpck, Scenario::kConstraints, 0.1,
                 "Figure 8: MPCKmeans (constraint scenario) — internal vs external curves, representative ALOI set, 10% of pool");
  PrintStoreStats(ctx);
  return 0;
}
