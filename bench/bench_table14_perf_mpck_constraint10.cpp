// bench_table14_perf_mpck_constraint10: reproduces Table 14 of the paper.
#include "harness/options.h"
#include "harness/paper_bench.h"

int main(int argc, char** argv) {
  using namespace cvcp::bench;
  const BenchOptions options = ParseBenchOptions(argc, argv);
  PrintBanner(options, "Table 14: MPCKmeans (constraint scenario) — average performance, 10% of constraint pool", "Table 14");
  PaperBenchContext ctx = MakeContext(options);
  RunPerformanceTable(ctx, BenchAlgo::kMpck, Scenario::kConstraints, 0.1,
                      "Table 14: MPCKmeans (constraint scenario) — average performance, 10% of constraint pool");
  PrintStoreStats(ctx);
  return 0;
}
