// bench_ablation_folds: how sensitive is CVCP to the fold count n (the
// paper uses "typically 10") and to stratified vs plain random folds?
// Reports, per n, the external quality of CVCP's pick on the ALOI
// collection and on Iris.

#include <cstdio>

#include "common/stats.h"
#include "common/strings.h"
#include "common/table.h"
#include "data/iris.h"
#include "harness/options.h"
#include "harness/paper_bench.h"

int main(int argc, char** argv) {
  using namespace cvcp;
  using namespace cvcp::bench;
  const BenchOptions options = ParseBenchOptions(argc, argv);
  PrintBanner(options, "Ablation: fold-count sensitivity of CVCP",
              "design choice (DESIGN.md ablation index)");
  PaperBenchContext ctx = MakeContext(options);
  FoscOpticsDendClusterer fosc;

  TextTable table(
      "CVCP external quality vs n_folds (FOSC-OPTICSDend, label scenario, "
      "20% labels)");
  table.SetHeader({"n_folds", "ALOI CVCP", "ALOI Expected", "Iris CVCP",
                   "Iris Expected"});
  Dataset iris = MakeIris();
  for (int n_folds : {2, 3, 5, 10}) {
    TrialSpec spec;
    spec.scenario = Scenario::kLabels;
    spec.level = 0.20;
    spec.n_folds = n_folds;
    spec.grid = DefaultMinPtsGrid();
    spec.exec.threads = options.threads;
    spec.trial_threads = options.trial_threads;
    spec.nesting = options.nesting;
    spec.use_cache = options.cache;
    spec.cache_pool = ctx.cache_pool.get();

    AloiAggregate aloi = RunAloiExperiment(ctx.aloi, fosc, spec,
                                           options.trials, options.seed);
    CellAggregate iris_cell =
        RunExperiment(iris, fosc, spec, options.trials, options.seed + 1);
    table.AddRow({Format("%d", n_folds),
                  FormatMeanStd(aloi.pooled.cvcp_mean, aloi.pooled.cvcp_std),
                  FormatMeanStd(aloi.pooled.exp_mean, aloi.pooled.exp_std),
                  FormatMeanStd(iris_cell.cvcp_mean, iris_cell.cvcp_std),
                  FormatMeanStd(iris_cell.exp_mean, iris_cell.exp_std)});
  }
  std::fputs(table.Render().c_str(), stdout);
  std::printf(
      "\nReading: CVCP should beat Expected at every n; very small n gives\n"
      "noisier internal scores (larger CVCP std), very large n starves the\n"
      "test folds of constraints.\n");
  PrintStoreStats(ctx);
  return 0;
}
