// bench_ablation_protocols: the paper's §2 taxonomy of external evaluation
// setups, measured. Runs the same clusterer at the same parameter under
// all four protocols on increasingly supervision-heavy settings; the
// use-all-data column drifts upward relative to the sound protocols as
// more of what is being "evaluated" was actually given to the algorithm.

#include <cstdio>

#include "common/stats.h"
#include "common/strings.h"
#include "common/table.h"
#include "eval/external_protocols.h"
#include "harness/options.h"
#include "harness/paper_bench.h"

int main(int argc, char** argv) {
  using namespace cvcp;
  using namespace cvcp::bench;
  const BenchOptions options = ParseBenchOptions(argc, argv);
  PrintBanner(options, "Ablation: external evaluation protocols (paper §2)",
              "use-all-data vs set-aside vs holdout vs n-fold CV");
  PaperBenchContext ctx = MakeContext(options);
  MpckMeansClusterer clusterer;

  TextTable table(
      "Overall F under each protocol (MPCKMeans k=5, ALOI member 0, mean "
      "over trials)");
  table.SetHeader({"supervision %", "use-all-data", "set-aside", "holdout",
                   "n-fold-cv"});
  const Dataset& data = ctx.aloi[0];
  for (double fraction : {0.1, 0.3, 0.5}) {
    std::vector<std::string> row = {Format("%g", fraction * 100.0)};
    for (ExternalProtocol p :
         {ExternalProtocol::kUseAllData, ExternalProtocol::kSetAside,
          ExternalProtocol::kHoldout, ExternalProtocol::kNFoldCv}) {
      std::vector<double> scores;
      for (int t = 0; t < options.trials; ++t) {
        ExternalEvalConfig config;
        config.protocol = p;
        config.supervision_fraction = fraction;
        config.n_folds = options.n_folds;
        Rng rng(options.seed + static_cast<uint64_t>(t) * 131);
        auto result = EvaluateWithProtocol(data, clusterer, 5, config, &rng);
        if (result.ok()) scores.push_back(result->overall_f);
      }
      row.push_back(FormatDouble(Mean(scores)));
    }
    table.AddRow(row);
  }
  std::fputs(table.Render().c_str(), stdout);
  std::printf(
      "\nReading: the gap between use-all-data and the sound protocols "
      "grows with the\nsupervision budget — scoring trained-on objects "
      "overstates quality (§2's warning).\n");
  PrintStoreStats(ctx);
  return 0;
}
