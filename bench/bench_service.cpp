// bench_service: end-to-end latency and warm-start behavior of the
// cvcp_serve job service, measured against the direct in-process RunJob
// baseline. Four rows:
//
//   direct        RunJob in-process (no server) — the baseline
//   served-cold   1 client, fresh server, cold caches
//   served-warm   same spec resubmitted to the same server — the compute
//                 cache must serve every OPTICS model (model_builds may
//                 not grow), so the row measures queue+protocol overhead
//   served-4x     4 concurrent clients submitting the same spec
//
// Every served report is byte-compared against the direct encoding; any
// mismatch (or a warm row that rebuilds models) makes the process exit
// nonzero, so the CI smoke step fails on a service determinism
// regression instead of printing it. Rows are mirrored into
// BENCH_service.json (--json PATH; '' disables). --threads N sets the
// per-job fan-out width.

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/strings.h"
#include "service/client.h"
#include "service/dataset_resolver.h"
#include "service/server.h"

namespace {

using namespace cvcp;  // NOLINT

bool g_ok = true;
std::vector<std::string> g_rows;

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

void EmitRow(const char* label, double ms, double baseline_ms, bool matches,
             const char* note) {
  std::printf("%-12s %10.1f %9.2fx  %s\n", label, ms,
              ms > 0 ? baseline_ms / ms : 0.0, note);
  g_rows.push_back(Format(
      "{\"table\": \"service\", \"row\": \"%s\", \"wall_ms\": %.3f, "
      "\"matches\": %s}",
      label, ms, matches ? "true" : "false"));
}

JobSpec BenchSpec() {
  JobSpec spec;
  spec.dataset = "zyeast";
  spec.dataset_seed = 5;
  spec.clusterer = "fosc";
  spec.scenario = SupervisionKind::kConstraints;
  spec.param_grid = {3, 6, 9, 12};
  spec.n_folds = 5;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  int threads = 0;
  std::string json_path = "BENCH_service.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--threads N] [--json PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  char tmpl[] = "/tmp/cvcp_bench_service.XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  if (dir == nullptr) {
    std::fprintf(stderr, "mkdtemp failed\n");
    return 1;
  }
  const std::string base = dir;

  const JobSpec spec = BenchSpec();

  // Baseline: the identical job, in process, no server.
  DatasetResolver resolver;
  auto data = resolver.Resolve(spec);
  CVCP_CHECK(data.ok());
  JobContext context;
  context.exec.threads = threads;
  const auto direct_start = std::chrono::steady_clock::now();
  auto direct = RunJob(**data, spec, context);
  const double direct_ms = MsSince(direct_start);
  CVCP_CHECK(direct.ok());
  const std::string direct_bytes = EncodeCvcpReport(direct.value());

  ServerConfig config;
  config.socket_path = base + "/sock";
  config.results_dir = base + "/results";
  config.store_dir = base + "/store";
  config.threads = threads;
  config.batch = 2;
  Server server(config);
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "%s\n", started.ToString().c_str());
    return 1;
  }

  std::printf(
      "=== cvcp_serve vs direct RunJob (dataset=%s n=%zu, fosc, "
      "%zu-value grid x %d folds, threads=%d) ===\n",
      spec.dataset.c_str(), (*data)->size(), spec.param_grid.size(),
      spec.n_folds, threads);
  std::printf("%-12s %10s %9s  %s\n", "row", "wall_ms", "vs direct",
              "report bytes");
  EmitRow("direct", direct_ms, direct_ms, true, "(baseline)");

  auto served_row = [&](const char* label, int clients,
                        bool expect_warm) {
    const StatsReply before = server.Stats();
    std::vector<std::string> replies(static_cast<size_t>(clients));
    std::vector<Status> errors(static_cast<size_t>(clients));
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> sessions;
    sessions.reserve(static_cast<size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      sessions.emplace_back([&, c] {
        auto client = Client::Connect(config.socket_path);
        if (!client.ok()) {
          errors[static_cast<size_t>(c)] = client.status();
          return;
        }
        auto submitted = client->Submit(spec);
        if (!submitted.ok()) {
          errors[static_cast<size_t>(c)] = submitted.status();
          return;
        }
        auto reply = client->Wait(submitted->job_id);
        if (!reply.ok()) {
          errors[static_cast<size_t>(c)] = reply.status();
          return;
        }
        replies[static_cast<size_t>(c)] = std::move(reply->report_bytes);
      });
    }
    for (std::thread& t : sessions) t.join();
    const double ms = MsSince(start);
    bool matches = true;
    for (int c = 0; c < clients; ++c) {
      if (!errors[static_cast<size_t>(c)].ok()) {
        std::fprintf(stderr, "client %d: %s\n", c,
                     errors[static_cast<size_t>(c)].ToString().c_str());
        matches = false;
      } else if (replies[static_cast<size_t>(c)] != direct_bytes) {
        matches = false;
      }
    }
    const StatsReply after = server.Stats();
    const bool warm_ok =
        !expect_warm || after.model_builds == before.model_builds;
    if (!matches || !warm_ok) g_ok = false;
    EmitRow(label, ms, direct_ms, matches && warm_ok,
            !matches   ? "MISMATCH vs direct"
            : !warm_ok ? "identical, but models were REBUILT"
            : expect_warm ? "identical (0 model rebuilds)"
                          : "identical to direct");
  };

  served_row("served-cold", /*clients=*/1, /*expect_warm=*/false);
  served_row("served-warm", /*clients=*/1, /*expect_warm=*/true);
  served_row("served-4x", /*clients=*/4, /*expect_warm=*/true);

  server.Stop(/*drain=*/true);

  if (!json_path.empty()) {
    std::FILE* file = std::fopen(json_path.c_str(), "w");
    if (file != nullptr) {
      std::fprintf(file,
                   "{\n  \"bench\": \"bench_service\",\n"
                   "  \"determinism_ok\": %s,\n  \"rows\": [\n",
                   g_ok ? "true" : "false");
      for (size_t i = 0; i < g_rows.size(); ++i) {
        std::fprintf(file, "    %s%s\n", g_rows[i].c_str(),
                     i + 1 < g_rows.size() ? "," : "");
      }
      std::fprintf(file, "  ]\n}\n");
      std::fclose(file);
      std::printf("wrote %zu JSON rows to %s\n", g_rows.size(),
                  json_path.c_str());
    }
  }
  return g_ok ? 0 : 1;
}
