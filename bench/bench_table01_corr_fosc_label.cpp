// bench_table01_corr_fosc_label: reproduces Table 1 of the paper.
#include "harness/options.h"
#include "harness/paper_bench.h"

int main(int argc, char** argv) {
  using namespace cvcp::bench;
  const BenchOptions options = ParseBenchOptions(argc, argv);
  PrintBanner(options, "Table 1: FOSC-OPTICSDend (label scenario) — correlation of internal scores with Overall F-Measure", "Table 1");
  PaperBenchContext ctx = MakeContext(options);
  RunCorrelationTable(ctx, BenchAlgo::kFosc, Scenario::kLabels,
                      {0.05, 0.10, 0.20},
                      "Table 1: FOSC-OPTICSDend (label scenario) — correlation of internal scores with Overall F-Measure");
  PrintStoreStats(ctx);
  return 0;
}
