// bench_table08_perf_mpck_label5: reproduces Table 8 of the paper.
#include "harness/options.h"
#include "harness/paper_bench.h"

int main(int argc, char** argv) {
  using namespace cvcp::bench;
  const BenchOptions options = ParseBenchOptions(argc, argv);
  PrintBanner(options, "Table 8: MPCKmeans (label scenario) — average performance, 5% labeled objects", "Table 8");
  PaperBenchContext ctx = MakeContext(options);
  RunPerformanceTable(ctx, BenchAlgo::kMpck, Scenario::kLabels, 0.05,
                      "Table 8: MPCKmeans (label scenario) — average performance, 5% labeled objects");
  PrintStoreStats(ctx);
  return 0;
}
