// bench_ablation_copkmeans: the paper's future-work question — does CVCP
// transfer to other semi-supervised clusterers? Runs the full Table-9-style
// experiment with COP-KMeans (hard constraints, Wagstaff et al. 2001) in
// place of MPCKMeans.

#include <cstdio>

#include "harness/options.h"
#include "harness/paper_bench.h"

int main(int argc, char** argv) {
  using namespace cvcp::bench;
  const BenchOptions options = ParseBenchOptions(argc, argv);
  PrintBanner(options,
              "Ablation: CVCP with COP-KMeans (hard constraints)",
              "paper §5 future work");
  PaperBenchContext ctx = MakeContext(options);
  RunPerformanceTable(
      ctx, BenchAlgo::kCop, Scenario::kLabels, 0.10,
      "COP-KMeans (label scenario) — average performance, 10% labeled "
      "objects (compare against Table 9's MPCKMeans row shapes)");
  RunCorrelationTable(
      ctx, BenchAlgo::kCop, Scenario::kLabels, {0.10},
      "COP-KMeans — correlation of internal scores with Overall F-Measure "
      "at 10% labels");
  PrintStoreStats(ctx);
  return 0;
}
