// bench_table04_corr_mpck_constraint: reproduces Table 4 of the paper.
#include "harness/options.h"
#include "harness/paper_bench.h"

int main(int argc, char** argv) {
  using namespace cvcp::bench;
  const BenchOptions options = ParseBenchOptions(argc, argv);
  PrintBanner(options, "Table 4: MPCKMeans (constraint scenario) — correlation of internal scores with Overall F-Measure", "Table 4");
  PaperBenchContext ctx = MakeContext(options);
  RunCorrelationTable(ctx, BenchAlgo::kMpck, Scenario::kConstraints,
                      {0.10, 0.20, 0.50},
                      "Table 4: MPCKMeans (constraint scenario) — correlation of internal scores with Overall F-Measure");
  PrintStoreStats(ctx);
  return 0;
}
