// bench_ablation_metric: MPCKMeans metric-learning variants under CVCP —
// no learning (PCKMeans-style), one shared diagonal metric, and the full
// per-cluster diagonal metrics the paper's MPCKMeans uses. Run on the
// scale-skewed Wine-like dataset (where adaptation matters most) and on
// pooled ALOI members.

#include <cstdio>

#include "common/strings.h"
#include "common/table.h"
#include "harness/options.h"
#include "harness/paper_bench.h"

int main(int argc, char** argv) {
  using namespace cvcp;
  using namespace cvcp::bench;
  const BenchOptions options = ParseBenchOptions(argc, argv);
  PrintBanner(options, "Ablation: MPCKMeans metric-learning variants",
              "design choice behind the paper's MPCKMeans");
  PaperBenchContext ctx = MakeContext(options);

  struct Variant {
    const char* label;
    MetricMode mode;
  };
  const Variant variants[] = {
      {"none (PCKMeans)", MetricMode::kNone},
      {"single diagonal", MetricMode::kSingleDiagonal},
      {"per-cluster diagonal", MetricMode::kPerClusterDiagonal},
  };

  TextTable table(
      "CVCP external quality by metric mode (label scenario, 20% labels)");
  table.SetHeader({"metric mode", "Wine-like CVCP", "Wine-like Exp",
                   "ALOI CVCP", "ALOI Exp"});
  const Dataset& wine = ctx.suite[1].data;
  for (const Variant& v : variants) {
    MpckMeansConfig config;
    config.metric_mode = v.mode;
    MpckMeansClusterer clusterer(config);

    TrialSpec spec;
    spec.scenario = Scenario::kLabels;
    spec.level = 0.20;
    spec.n_folds = options.n_folds;
    spec.exec.threads = options.threads;
    spec.trial_threads = options.trial_threads;
    spec.nesting = options.nesting;
    spec.use_cache = options.cache;
    spec.cache_pool = ctx.cache_pool.get();
    spec.grid = MakeKGrid(wine.NumClasses());
    CellAggregate wine_cell =
        RunExperiment(wine, clusterer, spec, options.trials, options.seed);

    spec.grid = MakeKGrid(5);
    AloiAggregate aloi = RunAloiExperiment(ctx.aloi, clusterer, spec,
                                           options.trials, options.seed + 1);
    table.AddRow({v.label,
                  FormatMeanStd(wine_cell.cvcp_mean, wine_cell.cvcp_std),
                  FormatMeanStd(wine_cell.exp_mean, wine_cell.exp_std),
                  FormatMeanStd(aloi.pooled.cvcp_mean, aloi.pooled.cvcp_std),
                  FormatMeanStd(aloi.pooled.exp_mean, aloi.pooled.exp_std)});
  }
  std::fputs(table.Render().c_str(), stdout);
  std::printf(
      "\nReading: on scale-skewed data (Wine-like) metric learning should "
      "lift quality;\non bounded homogeneous features (ALOI) the variants "
      "should be close.\n");
  PrintStoreStats(ctx);
  return 0;
}
