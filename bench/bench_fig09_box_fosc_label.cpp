// bench_fig09_box_fosc_label: reproduces Figure 9 of the paper.
#include "harness/options.h"
#include "harness/paper_bench.h"

int main(int argc, char** argv) {
  using namespace cvcp::bench;
  const BenchOptions options = ParseBenchOptions(argc, argv);
  PrintBanner(options, "Figure 9: FOSC-OPTICSDend (label scenario) — ALOI quality distributions, CVCP vs Expected", "Figure 9");
  PaperBenchContext ctx = MakeContext(options);
  RunBoxplotFigure(ctx, BenchAlgo::kFosc, Scenario::kLabels,
                   {0.05, 0.10, 0.20},
                   "Figure 9: FOSC-OPTICSDend (label scenario) — ALOI quality distributions, CVCP vs Expected");
  PrintStoreStats(ctx);
  return 0;
}
