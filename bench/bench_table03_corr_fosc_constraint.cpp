// bench_table03_corr_fosc_constraint: reproduces Table 3 of the paper.
#include "harness/options.h"
#include "harness/paper_bench.h"

int main(int argc, char** argv) {
  using namespace cvcp::bench;
  const BenchOptions options = ParseBenchOptions(argc, argv);
  PrintBanner(options, "Table 3: FOSC-OPTICSDend (constraint scenario) — correlation of internal scores with Overall F-Measure", "Table 3");
  PaperBenchContext ctx = MakeContext(options);
  RunCorrelationTable(ctx, BenchAlgo::kFosc, Scenario::kConstraints,
                      {0.10, 0.20, 0.50},
                      "Table 3: FOSC-OPTICSDend (constraint scenario) — correlation of internal scores with Overall F-Measure");
  PrintStoreStats(ctx);
  return 0;
}
