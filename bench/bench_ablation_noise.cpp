// bench_ablation_noise: DESIGN.md §6 fixes "noise objects are singletons"
// for the constraint-classification F-measure. The alternative — treating
// all noise as one big cluster — would count two noise objects as
// "together". This bench measures how much the choice moves the internal
// score and whether it can flip CVCP's selection, using FOSC (the only
// noise-producing algorithm here).

#include <cmath>
#include <cstdio>

#include "common/strings.h"
#include "common/table.h"
#include "constraints/oracle.h"
#include "core/cvcp.h"
#include "core/fmeasure.h"
#include "harness/options.h"
#include "harness/paper_bench.h"

namespace {

using namespace cvcp;  // NOLINT

/// Remaps noise (-1) to one shared cluster id — the alternative semantics.
Clustering NoiseAsOneCluster(const Clustering& c) {
  std::vector<int> assignment = c.assignment();
  int max_id = -1;
  for (int a : assignment) max_id = std::max(max_id, a);
  for (int& a : assignment) {
    if (a == kNoise) a = max_id + 1;
  }
  return Clustering(std::move(assignment));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cvcp::bench;
  const BenchOptions options = ParseBenchOptions(argc, argv);
  PrintBanner(options, "Ablation: noise semantics in the constraint F-measure",
              "DESIGN.md §6 design decision");
  PaperBenchContext ctx = MakeContext(options);

  FoscOpticsDendClusterer clusterer;
  TextTable table(
      "Internal F per MinPts under both noise conventions (one ALOI member, "
      "constraint scenario, 50% of pool)");
  table.SetHeader({"MinPts", "noise=singletons", "noise=one-cluster",
                   "noise objects"});

  const Dataset& data = ctx.aloi[0];
  Rng rng(options.seed);
  auto pool = BuildConstraintPool(data, 0.10, &rng);
  if (!pool.ok()) {
    std::fprintf(stderr, "%s\n", pool.status().ToString().c_str());
    return 1;
  }
  auto sampled = SampleConstraints(pool.value(), 0.5, &rng);
  if (!sampled.ok()) {
    std::fprintf(stderr, "%s\n", sampled.status().ToString().c_str());
    return 1;
  }
  Supervision supervision = Supervision::FromConstraints(sampled.value());

  int flips = 0;
  for (int minpts : DefaultMinPtsGrid()) {
    Rng run_rng(options.seed + static_cast<uint64_t>(minpts));
    auto clustering =
        clusterer.Cluster(data, supervision, minpts, &run_rng);
    if (!clustering.ok()) continue;
    const ConstraintFMeasure singleton = EvaluateConstraintClassification(
        clustering.value(), supervision.constraints());
    const ConstraintFMeasure merged = EvaluateConstraintClassification(
        NoiseAsOneCluster(clustering.value()), supervision.constraints());
    if (!std::isnan(singleton.average) && !std::isnan(merged.average) &&
        std::fabs(singleton.average - merged.average) > 1e-12) {
      ++flips;
    }
    table.AddRow({Format("%d", minpts), FormatDouble(singleton.average),
                  FormatDouble(merged.average),
                  Format("%zu", clustering->NumNoise())});
  }
  std::fputs(table.Render().c_str(), stdout);
  std::printf(
      "\n%d of 8 grid points score differently under the two conventions.\n"
      "Merged-noise counts must-links between unclustered objects as "
      "satisfied,\nrewarding extractions that cluster nothing — hence the "
      "singleton default.\n",
      flips);
  PrintStoreStats(ctx);
  return 0;
}
