// bench_table12_perf_fosc_constraint20: reproduces Table 12 of the paper.
#include "harness/options.h"
#include "harness/paper_bench.h"

int main(int argc, char** argv) {
  using namespace cvcp::bench;
  const BenchOptions options = ParseBenchOptions(argc, argv);
  PrintBanner(options, "Table 12: FOSC-OPTICSDend (constraint scenario) — average performance, 20% of constraint pool", "Table 12");
  PaperBenchContext ctx = MakeContext(options);
  RunPerformanceTable(ctx, BenchAlgo::kFosc, Scenario::kConstraints, 0.2,
                      "Table 12: FOSC-OPTICSDend (constraint scenario) — average performance, 20% of constraint pool");
  PrintStoreStats(ctx);
  return 0;
}
