// bench_table13_perf_fosc_constraint50: reproduces Table 13 of the paper.
#include "harness/options.h"
#include "harness/paper_bench.h"

int main(int argc, char** argv) {
  using namespace cvcp::bench;
  const BenchOptions options = ParseBenchOptions(argc, argv);
  PrintBanner(options, "Table 13: FOSC-OPTICSDend (constraint scenario) — average performance, 50% of constraint pool", "Table 13");
  PaperBenchContext ctx = MakeContext(options);
  RunPerformanceTable(ctx, BenchAlgo::kFosc, Scenario::kConstraints, 0.5,
                      "Table 13: FOSC-OPTICSDend (constraint scenario) — average performance, 50% of constraint pool");
  PrintStoreStats(ctx);
  return 0;
}
