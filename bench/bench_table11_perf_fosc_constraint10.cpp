// bench_table11_perf_fosc_constraint10: reproduces Table 11 of the paper.
#include "harness/options.h"
#include "harness/paper_bench.h"

int main(int argc, char** argv) {
  using namespace cvcp::bench;
  const BenchOptions options = ParseBenchOptions(argc, argv);
  PrintBanner(options, "Table 11: FOSC-OPTICSDend (constraint scenario) — average performance, 10% of constraint pool", "Table 11");
  PaperBenchContext ctx = MakeContext(options);
  RunPerformanceTable(ctx, BenchAlgo::kFosc, Scenario::kConstraints, 0.1,
                      "Table 11: FOSC-OPTICSDend (constraint scenario) — average performance, 10% of constraint pool");
  PrintStoreStats(ctx);
  return 0;
}
