// bench_fig12_box_mpck_constraint: reproduces Figure 12 of the paper.
#include "harness/options.h"
#include "harness/paper_bench.h"

int main(int argc, char** argv) {
  using namespace cvcp::bench;
  const BenchOptions options = ParseBenchOptions(argc, argv);
  PrintBanner(options, "Figure 12: MPCKmeans (constraint scenario) — ALOI quality distributions, CVCP vs Expected vs Silhouette", "Figure 12");
  PaperBenchContext ctx = MakeContext(options);
  RunBoxplotFigure(ctx, BenchAlgo::kMpck, Scenario::kConstraints,
                   {0.10, 0.20, 0.50},
                   "Figure 12: MPCKmeans (constraint scenario) — ALOI quality distributions, CVCP vs Expected vs Silhouette");
  PrintStoreStats(ctx);
  return 0;
}
