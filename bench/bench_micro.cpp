// Micro-benchmarks (google-benchmark) for the core primitives: constraint
// closure, fold splitting, OPTICS, k-means, MPCKMeans iterations, FOSC
// extraction, distance kernels and the constraint F-measure. These track
// the cost model behind the paper-scale benches. Before the
// google-benchmark suites run, main() prints four scaling tables for the
// parallel execution engine: CVCP serial-vs-parallel (with cost-model
// cell ordering), the trial-level fan-out on a wide outer loop,
// nested-width vs split-budget scheduling on the narrow-outer/wide-inner
// scenario, and the per-dataset compute cache on the FOSC scenario
// (cache-on vs cache-off with hit counts and per-stage wall time).
//
// Unlike the paper benches, this binary takes google-benchmark flags; the
// few engine options it supports (--threads N, --timings-file PATH,
// --cache-table-only, --store DIR, --json PATH) are stripped from argv
// before benchmark::Initialize. --timings-file makes the CVCP scaling
// table save its measured cell timings and, when the file already exists,
// drives the "file timings" cost-model row from it — the measured
// schedule persisting across process restarts. --store DIR adds
// store-cold / store-warm rows to the cache table (the warm row must
// serve every OPTICS model from disk) and persists the cell timings as a
// store artifact. Every table row is mirrored into a machine-readable
// JSON report (--json PATH, default BENCH_micro.json; pass '' to
// disable).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <algorithm>
#include <bit>

#include "cluster/dendrogram.h"
#include "cluster/fosc.h"
#include "cluster/kmeans.h"
#include "cluster/mpckmeans.h"
#include "cluster/optics.h"
#include "common/distance.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "constraints/folds.h"
#include "constraints/oracle.h"
#include "constraints/transitive_closure.h"
#include "common/strings.h"
#include "core/artifact_store.h"
#include "core/cvcp.h"
#include "core/dataset_cache.h"
#include "core/fmeasure.h"
#include "data/generators.h"
#include "harness/experiment.h"
#include "harness/options.h"

namespace {

using namespace cvcp;  // NOLINT

Dataset BenchData(size_t per_cluster, int k, size_t dims) {
  Rng rng(7);
  return MakeBlobs("bench", k, per_cluster, dims, 10.0, 1.0, &rng);
}

// Set false by any scaling-table row whose results drift from its
// baseline; main() exits nonzero so the CI smoke steps actually fail on
// a determinism regression instead of only printing it.
bool g_determinism_ok = true;

// Machine-readable mirror of every scaling-table row, emitted as
// BENCH_micro.json (--json PATH; empty disables). Each entry is one
// complete JSON object; WriteJsonReport wraps them with the determinism
// verdict.
std::vector<std::string> g_json_rows;

void AddJsonRow(std::string row) { g_json_rows.push_back(std::move(row)); }

void WriteJsonReport(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write JSON report %s\n", path.c_str());
    return;
  }
  std::fprintf(file,
               "{\n  \"bench\": \"bench_micro\",\n"
               "  \"determinism_ok\": %s,\n  \"rows\": [\n",
               g_determinism_ok ? "true" : "false");
  for (size_t i = 0; i < g_json_rows.size(); ++i) {
    std::fprintf(file, "    %s%s\n", g_json_rows[i].c_str(),
                 i + 1 < g_json_rows.size() ? "," : "");
  }
  std::fprintf(file, "  ]\n}\n");
  std::fclose(file);
  std::printf("wrote %zu JSON rows to %s\n", g_json_rows.size(),
              path.c_str());
}

// NaN-safe exact equality: compares bit patterns, so NaN == NaN (same
// payload) and +0.0 != -0.0 — the byte-identity the engine guarantees.
bool BitsEqual(double a, double b) {
  return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

ConstraintSet BenchConstraints(const Dataset& data, double frac) {
  Rng rng(11);
  auto pool = BuildConstraintPool(data, frac, &rng);
  CVCP_CHECK(pool.ok());
  return std::move(pool).value();
}

void BM_TransitiveClosure(benchmark::State& state) {
  Dataset data = BenchData(static_cast<size_t>(state.range(0)), 5, 8);
  ConstraintSet constraints = BenchConstraints(data, 0.2);
  for (auto _ : state) {
    auto closure = TransitiveClosure(constraints);
    benchmark::DoNotOptimize(closure);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(constraints.size()));
}
BENCHMARK(BM_TransitiveClosure)->Arg(25)->Arg(50)->Arg(100);

void BM_ConstraintFolds(benchmark::State& state) {
  Dataset data = BenchData(static_cast<size_t>(state.range(0)), 5, 8);
  ConstraintSet constraints = BenchConstraints(data, 0.2);
  Rng rng(13);
  FoldConfig config;
  config.n_folds = 5;
  for (auto _ : state) {
    auto folds = MakeConstraintFolds(constraints, config, &rng);
    benchmark::DoNotOptimize(folds);
  }
}
BENCHMARK(BM_ConstraintFolds)->Arg(25)->Arg(50)->Arg(100);

void BM_Optics(benchmark::State& state) {
  Dataset data = BenchData(static_cast<size_t>(state.range(0)), 5, 16);
  OpticsConfig config;
  config.min_pts = 5;
  for (auto _ : state) {
    auto result = RunOptics(data.points(), config);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_Optics)->Arg(25)->Arg(50)->Arg(100);

void BM_DendrogramAndFosc(benchmark::State& state) {
  Dataset data = BenchData(static_cast<size_t>(state.range(0)), 5, 16);
  OpticsConfig config;
  config.min_pts = 5;
  auto optics = RunOptics(data.points(), config);
  CVCP_CHECK(optics.ok());
  ConstraintSet constraints = BenchConstraints(data, 0.2);
  for (auto _ : state) {
    Dendrogram dg = Dendrogram::FromReachability(optics.value());
    auto fosc = ExtractClusters(dg, constraints, FoscConfig{});
    benchmark::DoNotOptimize(fosc);
  }
}
BENCHMARK(BM_DendrogramAndFosc)->Arg(25)->Arg(50)->Arg(100);

void BM_KMeans(benchmark::State& state) {
  Dataset data = BenchData(static_cast<size_t>(state.range(0)), 5, 16);
  KMeansConfig config;
  config.k = 5;
  config.n_init = 1;
  Rng rng(17);
  for (auto _ : state) {
    auto result = RunKMeans(data.points(), config, &rng);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_KMeans)->Arg(25)->Arg(50)->Arg(100);

void BM_MpckMeans(benchmark::State& state) {
  Dataset data = BenchData(static_cast<size_t>(state.range(0)), 5, 16);
  ConstraintSet constraints = BenchConstraints(data, 0.2);
  MpckMeansConfig config;
  config.k = 5;
  Rng rng(19);
  for (auto _ : state) {
    auto result = RunMpckMeans(data.points(), constraints, config, &rng);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_MpckMeans)->Arg(25)->Arg(50)->Arg(100);

// Scalar vs 4-accumulator-unrolled distance kernel (Arg: 0 = scalar,
// 1 = unrolled). The unrolled kernel reassociates the sum, so it is
// opt-in (--distance-kernel unrolled in the paper benches) and never the
// default; this benchmark quantifies what the bitwise contract costs.
void BM_SquaredEuclideanKernel(benchmark::State& state) {
  const bool previous = UnrolledDistanceKernelsEnabled();
  SetUnrolledDistanceKernels(state.range(0) != 0);
  Rng rng(41);
  std::vector<double> a(static_cast<size_t>(state.range(1)));
  std::vector<double> b(a.size());
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.NextDouble();
    b[i] = rng.NextDouble();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(SquaredEuclideanDistance(a, b));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(a.size()));
  SetUnrolledDistanceKernels(previous);
}
BENCHMARK(BM_SquaredEuclideanKernel)
    ->Args({0, 16})
    ->Args({1, 16})
    ->Args({0, 128})
    ->Args({1, 128});

void BM_ConstraintFMeasure(benchmark::State& state) {
  Dataset data = BenchData(static_cast<size_t>(state.range(0)), 5, 8);
  ConstraintSet constraints = BenchConstraints(data, 0.3);
  Clustering clustering(data.labels());
  for (auto _ : state) {
    auto fm = EvaluateConstraintClassification(clustering, constraints);
    benchmark::DoNotOptimize(fm);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(constraints.size()));
}
BENCHMARK(BM_ConstraintFMeasure)->Arg(25)->Arg(50)->Arg(100);

// Serial-vs-parallel CVCP wall time on the engine's target workload: a
// 10-fold × 8-value MPCKMeans grid (80 clustering cells per run). Also
// cross-checks that every configuration selects the same parameter with
// the same score — the engine's determinism guarantee. The final rows
// feed measured cell_timings back into the cost model
// (CellCostModel::prior_timings): the "prior timings" row uses this
// process's first parallel run, the "file timings" row (only with
// --timings-file and an existing file) uses a *previous invocation's*
// timings, and with --timings-file the measured timings are saved so the
// next invocation starts measured-longest-first. With --store the same
// persistence runs through the artifact store instead of a flat file
// (the "store timings" row), exercising the cell-timings artifact kind.
void PrintCvcpScalingTable(const std::string& timings_file,
                           const std::string& store_dir) {
  Dataset data = BenchData(/*per_cluster=*/40, /*k=*/5, /*dims=*/16);
  Rng rng(23);
  auto labeled = SampleLabeledObjects(data, 0.3, &rng);
  CVCP_CHECK(labeled.ok());
  Supervision supervision = Supervision::FromLabels(data, labeled.value());

  MpckMeansClusterer clusterer;
  CvcpConfig config;
  config.cv.n_folds = 10;
  config.param_grid = {2, 3, 4, 5, 6, 7, 8, 9};
  config.collect_timings = true;

  const int hw = static_cast<int>(
      std::max(1u, std::thread::hardware_concurrency()));
  std::vector<int> thread_counts = {1};
  if (hw >= 2) thread_counts.push_back(2);
  if (hw > 2) thread_counts.push_back(hw);

  std::printf(
      "=== CVCP serial vs parallel "
      "(MPCKMeans, %d-fold x %zu-value grid, n=%zu, %d hardware threads) "
      "===\n",
      config.cv.n_folds, config.param_grid.size(), data.size(), hw);
  std::printf("%-16s %8s %12s %10s %10s %s\n", "cost model", "threads",
              "wall_ms", "speedup", "efficiency", "matches serial");

  double serial_ms = 0.0;
  int serial_best = 0;
  double serial_score = 0.0;
  std::vector<CvCellTiming> measured;
  auto run_row = [&](const char* label, int threads) {
    config.cv.exec.threads = threads;
    Rng run_rng(29);
    const auto start = std::chrono::steady_clock::now();
    auto report = RunCvcp(data, supervision, clusterer, config, &run_rng);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    CVCP_CHECK(report.ok());
    // The first row's measured timings feed the cost-model rows and the
    // timings file (the serial baseline on single-core machines).
    if (measured.empty()) measured = report->cell_timings;
    if (threads == 1) {
      serial_ms = ms;
      serial_best = report->best_param;
      serial_score = report->best_score;
      std::printf("%-16s %8d %12.1f %9.2fx %9.2f%% %s\n", label, threads, ms,
                  1.0, 100.0, "(baseline)");
      AddJsonRow(Format(
          "{\"table\": \"cvcp_scaling\", \"mode\": \"%s\", \"threads\": %d, "
          "\"wall_ms\": %.3f, \"speedup\": 1.0, \"matches\": true}",
          label, threads, ms));
    } else {
      const bool matches = report->best_param == serial_best &&
                           BitsEqual(report->best_score, serial_score);
      if (!matches) g_determinism_ok = false;
      const double speedup = serial_ms / ms;
      std::printf("%-16s %8d %12.1f %9.2fx %9.2f%% %s\n", label, threads, ms,
                  speedup, 100.0 * speedup / threads,
                  matches ? "yes" : "NO — DETERMINISM BUG");
      AddJsonRow(Format(
          "{\"table\": \"cvcp_scaling\", \"mode\": \"%s\", \"threads\": %d, "
          "\"wall_ms\": %.3f, \"speedup\": %.3f, \"matches\": %s}",
          label, threads, ms, speedup, matches ? "true" : "false"));
    }
  };
  for (int threads : thread_counts) {
    run_row(threads == 1 ? "(serial)" : "size estimate", threads);
  }
  if (hw >= 2) {
    // Re-run at full width with the measured timings as the cost model.
    config.cv.cost.prior_timings = measured;
    run_row("prior timings", hw);
    config.cv.cost.prior_timings.clear();
  }
  if (!timings_file.empty()) {
    // Cost model persisted across invocations: drive a row from the
    // previous process's measured timings, then save this run's.
    auto loaded = cvcp::bench::LoadCellTimings(timings_file);
    if (loaded.ok() && hw >= 2) {
      config.cv.cost.prior_timings = std::move(loaded).value();
      run_row("file timings", hw);
      config.cv.cost.prior_timings.clear();
    }
    const Status saved = cvcp::bench::SaveCellTimings(timings_file, measured);
    if (!saved.ok()) {
      std::fprintf(stderr, "%s\n", saved.ToString().c_str());
    } else {
      std::printf("saved %zu cell timings to %s\n", measured.size(),
                  timings_file.c_str());
    }
  }
  if (!store_dir.empty()) {
    // Same persistence through the artifact store: a previous
    // invocation's timings (if any) drive a row, then this run's measured
    // timings are saved under the dataset's content hash.
    ArtifactStore store(store_dir);
    const uint64_t key = HashMatrixContent(data.points());
    auto prior = store.LoadCellTimings(key, "bench_micro_cvcp");
    if (prior.ok() && hw >= 2) {
      config.cv.cost.prior_timings = std::move(prior).value();
      run_row("store timings", hw);
      config.cv.cost.prior_timings.clear();
    }
    const Status saved = store.SaveCellTimings(key, "bench_micro_cvcp",
                                               measured);
    if (!saved.ok()) {
      std::fprintf(stderr, "%s\n", saved.ToString().c_str());
    } else {
      std::printf("persisted %zu cell timings to store %s\n",
                  measured.size(), store_dir.c_str());
    }
  }
  std::printf("\n");
}

// The per-dataset compute cache on its target workload: FOSC-OPTICSDend,
// whose OPTICS + dendrogram stage is supervision-independent. Uncached,
// every (param, fold) cell plus the final run pays a full OPTICS pass
// with on-the-fly O(d) distances — G×F+1 OPTICS runs per CVCP invocation.
// With the cache, the condensed distance matrix is built once, OPTICS
// runs once per grid value (G builds, the other G×(F-1)+1 cells are memo
// hits), and every distance evaluation inside OPTICS is an O(1) lookup.
// The table prints per-stage wall time (distance build, OPTICS model
// builds) and hit counts next to the speedup columns, and cross-checks
// that cached reports match the uncached baseline bit for bit.
//
// With --store DIR two more rows run against the persistent tier: the
// "store-cold" row purges DIR and populates it, the "store-warm" row uses
// a *fresh* DatasetCache over the same directory — so every model on the
// warm row must come from disk (model_builds = 0, model_loads = G), which
// is the in-process rehearsal of the cross-process warm start. A warm row
// that rebuilds anything fails the run like a determinism bug would.
void PrintFoscCacheTable(int threads, const std::string& store_dir) {
  Dataset data = BenchData(/*per_cluster=*/40, /*k=*/5, /*dims=*/16);
  Rng rng(37);
  auto pool = BuildConstraintPool(data, 0.25, &rng);
  CVCP_CHECK(pool.ok());
  auto sampled = SampleConstraints(pool.value(), 0.5, &rng);
  CVCP_CHECK(sampled.ok());
  Supervision supervision =
      Supervision::FromConstraints(std::move(sampled).value());

  FoscOpticsDendClusterer clusterer;
  CvcpConfig config;
  config.cv.n_folds = 10;
  config.param_grid = {3, 4, 5, 6, 7, 8, 9, 10};
  const size_t cells =
      config.param_grid.size() * static_cast<size_t>(config.cv.n_folds) + 1;

  std::printf(
      "=== Per-dataset compute cache "
      "(FOSC-OPTICSDend, %d-fold x %zu-value MinPts grid = %zu OPTICS-"
      "dependent runs, n=%zu, %d threads) ===\n",
      config.cv.n_folds, config.param_grid.size(), cells, data.size(),
      threads);
  std::printf("%-10s %8s %12s %9s %7s %6s %10s %10s %8s %9s %s\n", "cache",
              "threads", "wall_ms", "speedup", "optics", "loads",
              "model_hit", "dist_b/h", "dist_ms", "optics_ms",
              "matches uncached");

  double baseline_ms = 0.0;
  CvcpReport baseline;
  auto run_row = [&](const char* label, bool cache_on, int row_threads,
                     ArtifactStore* store, bool expect_warm) {
    config.cv.exec.threads = row_threads;
    std::optional<DatasetCache> cache;
    if (cache_on) {
      cache.emplace(data.points(), DatasetCacheTiers{nullptr, store});
    }
    Rng run_rng(43);
    const auto start = std::chrono::steady_clock::now();
    auto report = RunCvcp(data, supervision, clusterer, config, &run_rng,
                          cache.has_value() ? &*cache : nullptr);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    CVCP_CHECK(report.ok());
    const bool is_baseline = !cache_on && row_threads == 1;
    if (is_baseline) {
      baseline_ms = ms;
      baseline = *report;
    }
    bool matches = report->best_param == baseline.best_param &&
                   BitsEqual(report->best_score, baseline.best_score);
    for (size_t g = 0; matches && g < baseline.scores.size(); ++g) {
      matches = BitsEqual(report->scores[g].score, baseline.scores[g].score);
    }
    matches = matches && report->final_clustering.assignment() ==
                             baseline.final_clustering.assignment();
    if (!is_baseline && !matches) g_determinism_ok = false;
    // Uncached rows run OPTICS once per cell by construction; cached rows
    // report the cache's actual build/load/hit counters.
    DatasetCache::Stats stats;
    if (cache.has_value()) stats = cache->stats();
    const bool warm_ok =
        !expect_warm || (stats.model_builds == 0 && stats.model_loads > 0);
    if (!warm_ok) g_determinism_ok = false;
    const uint64_t optics_runs =
        cache_on ? stats.model_builds : static_cast<uint64_t>(cells);
    char dist_col[32];
    std::snprintf(dist_col, sizeof(dist_col), "%llu/%llu",
                  static_cast<unsigned long long>(stats.distance_builds),
                  static_cast<unsigned long long>(stats.distance_hits));
    std::printf(
        "%-10s %8d %12.1f %8.2fx %7llu %6llu %10llu %10s %8.1f %9.1f %s\n",
        label, row_threads, ms, baseline_ms / ms,
        static_cast<unsigned long long>(optics_runs),
        static_cast<unsigned long long>(stats.model_loads),
        static_cast<unsigned long long>(stats.model_hits), dist_col,
        stats.distance_build_ms, stats.model_build_ms,
        is_baseline ? "(baseline)"
        : !matches  ? "NO — DETERMINISM BUG"
        : !warm_ok  ? "yes, but STORE NOT WARM"
                    : "yes");
    AddJsonRow(Format(
        "{\"table\": \"fosc_cache\", \"label\": \"%s\", \"threads\": %d, "
        "\"wall_ms\": %.3f, \"optics_runs\": %llu, \"model_builds\": %llu, "
        "\"model_loads\": %llu, \"model_hits\": %llu, "
        "\"dist_builds\": %llu, \"dist_loads\": %llu, \"dist_hits\": %llu, "
        "\"dist_ms\": %.3f, \"optics_ms\": %.3f, \"matches\": %s}",
        label, row_threads, ms,
        static_cast<unsigned long long>(optics_runs),
        static_cast<unsigned long long>(stats.model_builds),
        static_cast<unsigned long long>(stats.model_loads),
        static_cast<unsigned long long>(stats.model_hits),
        static_cast<unsigned long long>(stats.distance_builds),
        static_cast<unsigned long long>(stats.distance_loads),
        static_cast<unsigned long long>(stats.distance_hits),
        stats.distance_build_ms, stats.model_build_ms,
        matches && warm_ok ? "true" : "false"));
  };
  run_row("off", /*cache_on=*/false, /*row_threads=*/1, nullptr, false);
  run_row("on", /*cache_on=*/true, /*row_threads=*/1, nullptr, false);
  if (threads > 1) {
    run_row("off", /*cache_on=*/false, threads, nullptr, false);
    run_row("on", /*cache_on=*/true, threads, nullptr, false);
  }
  if (!store_dir.empty()) {
    ArtifactStore store(store_dir);
    auto purged = store.Purge();
    if (!purged.ok()) {
      std::fprintf(stderr, "%s\n", purged.status().ToString().c_str());
    }
    run_row("store-cold", /*cache_on=*/true, /*row_threads=*/1, &store,
            /*expect_warm=*/false);
    run_row("store-warm", /*cache_on=*/true, /*row_threads=*/1, &store,
            /*expect_warm=*/true);
    const ArtifactStore::Stats ss = store.stats();
    std::printf(
        "store %s: disk_hits=%llu disk_misses=%llu writes=%llu "
        "bytes_written=%llu bytes_read=%llu\n",
        store_dir.c_str(), static_cast<unsigned long long>(ss.disk_hits),
        static_cast<unsigned long long>(ss.disk_misses),
        static_cast<unsigned long long>(ss.writes),
        static_cast<unsigned long long>(ss.bytes_written),
        static_cast<unsigned long long>(ss.bytes_read));
    AddJsonRow(Format(
        "{\"table\": \"store\", \"dir\": \"%s\", \"disk_hits\": %llu, "
        "\"disk_misses\": %llu, \"corrupt_misses\": %llu, "
        "\"version_misses\": %llu, \"writes\": %llu, "
        "\"write_errors\": %llu, \"bytes_written\": %llu, "
        "\"bytes_read\": %llu}",
        store_dir.c_str(), static_cast<unsigned long long>(ss.disk_hits),
        static_cast<unsigned long long>(ss.disk_misses),
        static_cast<unsigned long long>(ss.corrupt_misses),
        static_cast<unsigned long long>(ss.version_misses),
        static_cast<unsigned long long>(ss.writes),
        static_cast<unsigned long long>(ss.write_errors),
        static_cast<unsigned long long>(ss.bytes_written),
        static_cast<unsigned long long>(ss.bytes_read)));
  }
  std::printf("\n");
}

// Shared row-runner for the two RunExperiment scaling tables: runs one
// engine configuration, prints wall time plus the derived
// speedup-vs-serial and efficiency (speedup / threads) columns, and
// cross-checks the engine's guarantee that every configuration produces
// bit-identical aggregates.
struct ExperimentScalingBaseline {
  double serial_ms = 0.0;
  uint64_t serial_mean_bits = 0;
  int serial_ok = 0;
};

void RunExperimentScalingRow(const Dataset& data,
                             const MpckMeansClusterer& clusterer,
                             cvcp::bench::TrialSpec spec, int trials,
                             const char* table, const char* label,
                             int threads, int trial_threads,
                             cvcp::NestingPolicy nesting,
                             ExperimentScalingBaseline* baseline) {
  spec.exec.threads = threads;
  spec.trial_threads = trial_threads;
  spec.nesting = nesting;
  const auto start = std::chrono::steady_clock::now();
  const cvcp::bench::CellAggregate agg =
      cvcp::bench::RunExperiment(data, clusterer, spec, trials, /*seed=*/31);
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  const uint64_t mean_bits = std::bit_cast<uint64_t>(agg.cvcp_mean);
  if (threads == 1) {
    baseline->serial_ms = ms;
    baseline->serial_mean_bits = mean_bits;
    baseline->serial_ok = agg.trials_ok;
    std::printf("%-14s %8d %12.1f %9.2fx %9.2f%% %s\n", label, threads, ms,
                1.0, 100.0, "(baseline)");
    AddJsonRow(Format(
        "{\"table\": \"%s\", \"mode\": \"%s\", \"threads\": %d, "
        "\"wall_ms\": %.3f, \"speedup\": 1.0, \"matches\": true}",
        table, label, threads, ms));
  } else {
    const bool matches = mean_bits == baseline->serial_mean_bits &&
                         agg.trials_ok == baseline->serial_ok;
    if (!matches) g_determinism_ok = false;
    const double speedup = baseline->serial_ms / ms;
    std::printf("%-14s %8d %12.1f %9.2fx %9.2f%% %s\n", label, threads, ms,
                speedup, 100.0 * speedup / threads,
                matches ? "yes" : "NO — DETERMINISM BUG");
    AddJsonRow(Format(
        "{\"table\": \"%s\", \"mode\": \"%s\", \"threads\": %d, "
        "\"wall_ms\": %.3f, \"speedup\": %.3f, \"matches\": %s}",
        table, label, threads, ms, speedup, matches ? "true" : "false"));
  }
}

// Serial-vs-parallel wall time for the *trial-level* fan-out in
// RunExperiment on a wide outer loop (many trials): fully serial, inner
// (CVCP grid×fold) parallelism only (`trial_threads = 1`, the
// pre-trial-parallel engine), the all-or-nothing budget split, and the
// nested-width scheduler.
void PrintTrialScalingTable() {
  Dataset data = BenchData(/*per_cluster=*/25, /*k=*/4, /*dims=*/8);
  MpckMeansClusterer clusterer;

  const int hw = static_cast<int>(
      std::max(1u, std::thread::hardware_concurrency()));
  cvcp::bench::TrialSpec spec;
  spec.scenario = cvcp::bench::Scenario::kLabels;
  spec.level = 0.20;
  spec.n_folds = 5;
  spec.grid = {2, 3, 4, 5};
  const int trials = std::max(8, hw);

  std::printf(
      "=== RunExperiment serial vs trial-parallel "
      "(MPCKMeans, %d trials, %d-fold x %zu-value grid, n=%zu, "
      "%d hardware threads) ===\n",
      trials, spec.n_folds, spec.grid.size(), data.size(), hw);
  std::printf("%-14s %8s %12s %10s %10s %s\n", "mode", "threads", "wall_ms",
              "speedup", "efficiency", "matches serial");

  ExperimentScalingBaseline baseline;
  RunExperimentScalingRow(data, clusterer, spec, trials, "trial_scaling",
                          "serial", 1, 1, NestingPolicy::kSplit, &baseline);
  if (hw >= 2) {
    RunExperimentScalingRow(data, clusterer, spec, trials, "trial_scaling",
                            "CVCP-level", hw, 1, NestingPolicy::kSplit,
                            &baseline);
    RunExperimentScalingRow(data, clusterer, spec, trials, "trial_scaling",
                            "trial-level", hw, 0, NestingPolicy::kSplit,
                            &baseline);
    RunExperimentScalingRow(data, clusterer, spec, trials, "trial_scaling",
                            "nested", hw, 0, NestingPolicy::kNested,
                            &baseline);
  }
  std::printf("\n");
}

// The nested scheduler's target scenario: a *narrow* outer loop (few
// trials) with a wide inner loop (big grid × folds). The all-or-nothing
// split can only spend the budget at one level — serial trials with
// parallel cells — so each trial's fold-build/final-clustering sections
// and cell tails leave the budget idle. The nested-width mode runs trial
// lanes and their CVCP cells concurrently (lanes × inner width ≈ budget)
// and help-while-waiting keeps every thread busy until the last cell, so
// its throughput should be >= the split row's. Uses an explicit 4-thread
// budget (not hw) so the comparison also exercises queueing on small
// machines; the determinism column shows results never depend on any of
// this.
void PrintNestedVsSplitTable() {
  Dataset data = BenchData(/*per_cluster=*/30, /*k=*/4, /*dims=*/8);
  MpckMeansClusterer clusterer;

  const int hw = static_cast<int>(
      std::max(1u, std::thread::hardware_concurrency()));
  const int budget = std::max(4, hw);
  cvcp::bench::TrialSpec spec;
  spec.scenario = cvcp::bench::Scenario::kLabels;
  spec.level = 0.20;
  spec.n_folds = 5;
  spec.grid = {2, 3, 4, 5, 6, 7, 8, 9};
  const int trials = 2;

  std::printf(
      "=== Nested-width vs split-budget scheduler, few-trials x large-grid "
      "(MPCKMeans, %d trials, %d-fold x %zu-value grid = %zu cells/trial, "
      "n=%zu, budget %d, %d hardware threads) ===\n",
      trials, spec.n_folds, spec.grid.size(),
      spec.grid.size() * static_cast<size_t>(spec.n_folds), data.size(),
      budget, hw);
  std::printf("%-14s %8s %12s %10s %10s %s\n", "mode", "threads", "wall_ms",
              "speedup", "efficiency", "matches serial");

  ExperimentScalingBaseline baseline;
  RunExperimentScalingRow(data, clusterer, spec, trials, "nested_vs_split",
                          "serial", 1, 1, NestingPolicy::kSplit, &baseline);
  RunExperimentScalingRow(data, clusterer, spec, trials, "nested_vs_split",
                          "split-budget", budget, 0, NestingPolicy::kSplit,
                          &baseline);
  RunExperimentScalingRow(data, clusterer, spec, trials, "nested_vs_split",
                          "nested-width", budget, 0, NestingPolicy::kNested,
                          &baseline);
  std::printf("\n");
}

// This binary's own flags, stripped from argv before google-benchmark
// sees the rest.
struct MicroOptions {
  int threads = 0;           // 0 = all hardware threads (cache table width)
  std::string timings_file;  // persist CVCP cell timings across invocations
  bool cache_table_only = false;  // print the cache table and exit (CI smoke)
  std::string store_dir;  // artifact store dir: store-cold/warm rows + timings
  std::string json_path = "BENCH_micro.json";  // "" (via --json '') disables
};

MicroOptions StripMicroOptions(int* argc, char** argv) {
  MicroOptions o;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < *argc) {
      o.threads = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--timings-file") == 0 && i + 1 < *argc) {
      o.timings_file = argv[++i];
    } else if (std::strcmp(argv[i], "--cache-table-only") == 0) {
      o.cache_table_only = true;
    } else if (std::strcmp(argv[i], "--store") == 0 && i + 1 < *argc) {
      o.store_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < *argc) {
      o.json_path = argv[++i];
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  if (o.threads < 0) o.threads = 0;
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const MicroOptions options = StripMicroOptions(&argc, argv);
  const int hw = static_cast<int>(
      std::max(1u, std::thread::hardware_concurrency()));
  const int table_threads = options.threads > 0 ? options.threads : hw;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (options.cache_table_only) {
    PrintFoscCacheTable(table_threads, options.store_dir);
    if (!options.json_path.empty()) WriteJsonReport(options.json_path);
    benchmark::Shutdown();
    return g_determinism_ok ? 0 : 1;
  }
  PrintCvcpScalingTable(options.timings_file, options.store_dir);
  PrintTrialScalingTable();
  PrintNestedVsSplitTable();
  PrintFoscCacheTable(table_threads, options.store_dir);
  if (!options.json_path.empty()) WriteJsonReport(options.json_path);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  // Nonzero on any "NO — DETERMINISM BUG" row so the CI smoke steps fail
  // on a regression instead of only printing it.
  return g_determinism_ok ? 0 : 1;
}
