// Micro-benchmarks (google-benchmark) for the core primitives: constraint
// closure, fold splitting, OPTICS, k-means, MPCKMeans iterations, FOSC
// extraction and the constraint F-measure. These track the cost model
// behind the paper-scale benches. Before the google-benchmark suites run,
// main() prints a serial-vs-parallel CVCP scaling table for the parallel
// execution engine.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include <algorithm>
#include <bit>

#include "cluster/dendrogram.h"
#include "cluster/fosc.h"
#include "cluster/kmeans.h"
#include "cluster/mpckmeans.h"
#include "cluster/optics.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "constraints/folds.h"
#include "constraints/oracle.h"
#include "constraints/transitive_closure.h"
#include "core/cvcp.h"
#include "core/fmeasure.h"
#include "data/generators.h"
#include "harness/experiment.h"

namespace {

using namespace cvcp;  // NOLINT

Dataset BenchData(size_t per_cluster, int k, size_t dims) {
  Rng rng(7);
  return MakeBlobs("bench", k, per_cluster, dims, 10.0, 1.0, &rng);
}

ConstraintSet BenchConstraints(const Dataset& data, double frac) {
  Rng rng(11);
  auto pool = BuildConstraintPool(data, frac, &rng);
  CVCP_CHECK(pool.ok());
  return std::move(pool).value();
}

void BM_TransitiveClosure(benchmark::State& state) {
  Dataset data = BenchData(static_cast<size_t>(state.range(0)), 5, 8);
  ConstraintSet constraints = BenchConstraints(data, 0.2);
  for (auto _ : state) {
    auto closure = TransitiveClosure(constraints);
    benchmark::DoNotOptimize(closure);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(constraints.size()));
}
BENCHMARK(BM_TransitiveClosure)->Arg(25)->Arg(50)->Arg(100);

void BM_ConstraintFolds(benchmark::State& state) {
  Dataset data = BenchData(static_cast<size_t>(state.range(0)), 5, 8);
  ConstraintSet constraints = BenchConstraints(data, 0.2);
  Rng rng(13);
  FoldConfig config;
  config.n_folds = 5;
  for (auto _ : state) {
    auto folds = MakeConstraintFolds(constraints, config, &rng);
    benchmark::DoNotOptimize(folds);
  }
}
BENCHMARK(BM_ConstraintFolds)->Arg(25)->Arg(50)->Arg(100);

void BM_Optics(benchmark::State& state) {
  Dataset data = BenchData(static_cast<size_t>(state.range(0)), 5, 16);
  OpticsConfig config;
  config.min_pts = 5;
  for (auto _ : state) {
    auto result = RunOptics(data.points(), config);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_Optics)->Arg(25)->Arg(50)->Arg(100);

void BM_DendrogramAndFosc(benchmark::State& state) {
  Dataset data = BenchData(static_cast<size_t>(state.range(0)), 5, 16);
  OpticsConfig config;
  config.min_pts = 5;
  auto optics = RunOptics(data.points(), config);
  CVCP_CHECK(optics.ok());
  ConstraintSet constraints = BenchConstraints(data, 0.2);
  for (auto _ : state) {
    Dendrogram dg = Dendrogram::FromReachability(optics.value());
    auto fosc = ExtractClusters(dg, constraints, FoscConfig{});
    benchmark::DoNotOptimize(fosc);
  }
}
BENCHMARK(BM_DendrogramAndFosc)->Arg(25)->Arg(50)->Arg(100);

void BM_KMeans(benchmark::State& state) {
  Dataset data = BenchData(static_cast<size_t>(state.range(0)), 5, 16);
  KMeansConfig config;
  config.k = 5;
  config.n_init = 1;
  Rng rng(17);
  for (auto _ : state) {
    auto result = RunKMeans(data.points(), config, &rng);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_KMeans)->Arg(25)->Arg(50)->Arg(100);

void BM_MpckMeans(benchmark::State& state) {
  Dataset data = BenchData(static_cast<size_t>(state.range(0)), 5, 16);
  ConstraintSet constraints = BenchConstraints(data, 0.2);
  MpckMeansConfig config;
  config.k = 5;
  Rng rng(19);
  for (auto _ : state) {
    auto result = RunMpckMeans(data.points(), constraints, config, &rng);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_MpckMeans)->Arg(25)->Arg(50)->Arg(100);

void BM_ConstraintFMeasure(benchmark::State& state) {
  Dataset data = BenchData(static_cast<size_t>(state.range(0)), 5, 8);
  ConstraintSet constraints = BenchConstraints(data, 0.3);
  Clustering clustering(data.labels());
  for (auto _ : state) {
    auto fm = EvaluateConstraintClassification(clustering, constraints);
    benchmark::DoNotOptimize(fm);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(constraints.size()));
}
BENCHMARK(BM_ConstraintFMeasure)->Arg(25)->Arg(50)->Arg(100);

// Serial-vs-parallel CVCP wall time on the engine's target workload: a
// 10-fold × 8-value MPCKMeans grid (80 clustering cells per run). Also
// cross-checks that every thread count selects the same parameter with the
// same score — the engine's determinism guarantee.
void PrintCvcpScalingTable() {
  Dataset data = BenchData(/*per_cluster=*/40, /*k=*/5, /*dims=*/16);
  Rng rng(23);
  auto labeled = SampleLabeledObjects(data, 0.3, &rng);
  CVCP_CHECK(labeled.ok());
  Supervision supervision = Supervision::FromLabels(data, labeled.value());

  MpckMeansClusterer clusterer;
  CvcpConfig config;
  config.cv.n_folds = 10;
  config.param_grid = {2, 3, 4, 5, 6, 7, 8, 9};

  const int hw = static_cast<int>(
      std::max(1u, std::thread::hardware_concurrency()));
  std::vector<int> thread_counts = {1};
  if (hw >= 2) thread_counts.push_back(2);
  if (hw > 2) thread_counts.push_back(hw);

  std::printf(
      "=== CVCP serial vs parallel "
      "(MPCKMeans, %d-fold x %zu-value grid, n=%zu, %d hardware threads) "
      "===\n",
      config.cv.n_folds, config.param_grid.size(), data.size(), hw);
  std::printf("%-8s %12s %10s %s\n", "threads", "wall_ms", "speedup",
              "matches serial");

  double serial_ms = 0.0;
  int serial_best = 0;
  double serial_score = 0.0;
  for (int threads : thread_counts) {
    config.cv.exec.threads = threads;
    Rng run_rng(29);
    const auto start = std::chrono::steady_clock::now();
    auto report = RunCvcp(data, supervision, clusterer, config, &run_rng);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    CVCP_CHECK(report.ok());
    if (threads == 1) {
      serial_ms = ms;
      serial_best = report->best_param;
      serial_score = report->best_score;
      std::printf("%-8d %12.1f %9.2fx %s\n", threads, ms, 1.0, "(baseline)");
    } else {
      const bool matches = report->best_param == serial_best &&
                           report->best_score == serial_score;
      std::printf("%-8d %12.1f %9.2fx %s\n", threads, ms, serial_ms / ms,
                  matches ? "yes" : "NO — DETERMINISM BUG");
    }
  }
  std::printf("\n");
}

// Serial-vs-parallel wall time for the *trial-level* fan-out in
// RunExperiment: fully serial, inner (CVCP grid×fold) parallelism only
// (`trial_threads = 1`, the pre-trial-parallel engine), and the automatic
// budget split (trial lanes outside, CVCP cells inline). Also cross-checks
// the engine's guarantee that every configuration produces bit-identical
// aggregates.
void PrintTrialScalingTable() {
  Dataset data = BenchData(/*per_cluster=*/25, /*k=*/4, /*dims=*/8);
  MpckMeansClusterer clusterer;

  const int hw = static_cast<int>(
      std::max(1u, std::thread::hardware_concurrency()));
  cvcp::bench::TrialSpec spec;
  spec.scenario = cvcp::bench::Scenario::kLabels;
  spec.level = 0.20;
  spec.n_folds = 5;
  spec.grid = {2, 3, 4, 5};
  const int trials = std::max(8, hw);

  struct Row {
    const char* label;
    int threads;
    int trial_threads;
  };
  std::vector<Row> rows = {{"serial", 1, 1}};
  if (hw >= 2) {
    rows.push_back({"CVCP-level", hw, 1});
    rows.push_back({"trial-level", hw, 0});
  }

  std::printf(
      "=== RunExperiment serial vs trial-parallel "
      "(MPCKMeans, %d trials, %d-fold x %zu-value grid, n=%zu, "
      "%d hardware threads) ===\n",
      trials, spec.n_folds, spec.grid.size(), data.size(), hw);
  std::printf("%-14s %8s %12s %10s %s\n", "mode", "threads", "wall_ms",
              "speedup", "matches serial");

  double serial_ms = 0.0;
  uint64_t serial_mean_bits = 0;
  int serial_ok = 0;
  for (const Row& row : rows) {
    spec.exec.threads = row.threads;
    spec.trial_threads = row.trial_threads;
    const auto start = std::chrono::steady_clock::now();
    const cvcp::bench::CellAggregate agg =
        cvcp::bench::RunExperiment(data, clusterer, spec, trials, /*seed=*/31);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    const uint64_t mean_bits = std::bit_cast<uint64_t>(agg.cvcp_mean);
    if (row.threads == 1) {
      serial_ms = ms;
      serial_mean_bits = mean_bits;
      serial_ok = agg.trials_ok;
      std::printf("%-14s %8d %12.1f %9.2fx %s\n", row.label, row.threads, ms,
                  1.0, "(baseline)");
    } else {
      const bool matches =
          mean_bits == serial_mean_bits && agg.trials_ok == serial_ok;
      std::printf("%-14s %8d %12.1f %9.2fx %s\n", row.label, row.threads, ms,
                  serial_ms / ms, matches ? "yes" : "NO — DETERMINISM BUG");
    }
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  PrintCvcpScalingTable();
  PrintTrialScalingTable();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
