// Micro-benchmarks (google-benchmark) for the core primitives: constraint
// closure, fold splitting, OPTICS, k-means, MPCKMeans iterations, FOSC
// extraction, distance kernels and the constraint F-measure. These track
// the cost model behind the paper-scale benches. Before the
// google-benchmark suites run, main() prints the scaling tables for the
// parallel execution engine: CVCP serial-vs-parallel (with cost-model
// cell ordering), the trial-level fan-out on a wide outer loop,
// nested-width vs split-budget scheduling on the narrow-outer/wide-inner
// scenario, and the per-dataset compute cache on the FOSC scenario
// (cache-on vs cache-off with hit counts and per-stage wall time) —
// plus the distance-matrix build table (kernel x tiling x storage, with
// the >= 2x acceptance row) and the f32-vs-f64 CVCP selection-agreement
// ablation, both mirrored into BENCH_distance.json.
//
// Unlike the paper benches, this binary takes google-benchmark flags; the
// few engine options it supports (--threads N, --timings-file PATH,
// --cache-table-only, --store DIR, --json PATH, --distance-json PATH)
// are stripped from argv before benchmark::Initialize. --timings-file makes the CVCP scaling
// table save its measured cell timings and, when the file already exists,
// drives the "file timings" cost-model row from it — the measured
// schedule persisting across process restarts. --store DIR adds
// store-cold / store-warm rows to the cache table (the warm row must
// serve every OPTICS model from disk) and persists the cell timings as a
// store artifact. Every table row is mirrored into a machine-readable
// JSON report (--json PATH, default BENCH_micro.json; pass '' to
// disable).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>
#include <limits>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <algorithm>
#include <bit>

#include "cluster/dendrogram.h"
#include "cluster/fosc.h"
#include "cluster/kmeans.h"
#include "cluster/mpckmeans.h"
#include "cluster/optics.h"
#include "common/distance.h"
#include "common/distance_kernels.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "constraints/folds.h"
#include "constraints/oracle.h"
#include "constraints/transitive_closure.h"
#include "common/strings.h"
#include "core/artifact_store.h"
#include "core/cvcp.h"
#include "core/dataset_cache.h"
#include "core/fmeasure.h"
#include "data/generators.h"
#include "harness/experiment.h"
#include "harness/options.h"

namespace {

using namespace cvcp;  // NOLINT

Dataset BenchData(size_t per_cluster, int k, size_t dims) {
  Rng rng(7);
  return MakeBlobs("bench", k, per_cluster, dims, 10.0, 1.0, &rng);
}

// Set false by any scaling-table row whose results drift from its
// baseline; main() exits nonzero so the CI smoke steps actually fail on
// a determinism regression instead of only printing it.
bool g_determinism_ok = true;

// Machine-readable mirror of every scaling-table row, emitted as
// BENCH_micro.json (--json PATH; empty disables). Each entry is one
// complete JSON object; WriteJsonReport wraps them with the determinism
// verdict.
std::vector<std::string> g_json_rows;

void AddJsonRow(std::string row) { g_json_rows.push_back(std::move(row)); }

// Rows of the distance-build and f32-ablation tables, mirrored into the
// standalone BENCH_distance.json (--distance-json PATH) on top of the
// regular BENCH_micro.json rows.
std::vector<std::string> g_distance_rows;

void AddDistanceRow(const std::string& row) {
  g_distance_rows.push_back(row);
  g_json_rows.push_back(row);
}

void WriteDistanceJsonReport(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write JSON report %s\n", path.c_str());
    return;
  }
  std::fprintf(file,
               "{\n  \"bench\": \"bench_micro/distance\",\n"
               "  \"arch\": \"%s\",\n"
               "  \"determinism_ok\": %s,\n  \"rows\": [\n",
               DistanceKernelArch(), g_determinism_ok ? "true" : "false");
  for (size_t i = 0; i < g_distance_rows.size(); ++i) {
    std::fprintf(file, "    %s%s\n", g_distance_rows[i].c_str(),
                 i + 1 < g_distance_rows.size() ? "," : "");
  }
  std::fprintf(file, "  ]\n}\n");
  std::fclose(file);
  std::printf("wrote %zu JSON rows to %s\n", g_distance_rows.size(),
              path.c_str());
}

void WriteJsonReport(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write JSON report %s\n", path.c_str());
    return;
  }
  std::fprintf(file,
               "{\n  \"bench\": \"bench_micro\",\n"
               "  \"determinism_ok\": %s,\n  \"rows\": [\n",
               g_determinism_ok ? "true" : "false");
  for (size_t i = 0; i < g_json_rows.size(); ++i) {
    std::fprintf(file, "    %s%s\n", g_json_rows[i].c_str(),
                 i + 1 < g_json_rows.size() ? "," : "");
  }
  std::fprintf(file, "  ]\n}\n");
  std::fclose(file);
  std::printf("wrote %zu JSON rows to %s\n", g_json_rows.size(),
              path.c_str());
}

// NaN-safe exact equality: compares bit patterns, so NaN == NaN (same
// payload) and +0.0 != -0.0 — the byte-identity the engine guarantees.
bool BitsEqual(double a, double b) {
  return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

ConstraintSet BenchConstraints(const Dataset& data, double frac) {
  Rng rng(11);
  auto pool = BuildConstraintPool(data, frac, &rng);
  CVCP_CHECK(pool.ok());
  return std::move(pool).value();
}

void BM_TransitiveClosure(benchmark::State& state) {
  Dataset data = BenchData(static_cast<size_t>(state.range(0)), 5, 8);
  ConstraintSet constraints = BenchConstraints(data, 0.2);
  for (auto _ : state) {
    auto closure = TransitiveClosure(constraints);
    benchmark::DoNotOptimize(closure);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(constraints.size()));
}
BENCHMARK(BM_TransitiveClosure)->Arg(25)->Arg(50)->Arg(100);

void BM_ConstraintFolds(benchmark::State& state) {
  Dataset data = BenchData(static_cast<size_t>(state.range(0)), 5, 8);
  ConstraintSet constraints = BenchConstraints(data, 0.2);
  Rng rng(13);
  FoldConfig config;
  config.n_folds = 5;
  for (auto _ : state) {
    auto folds = MakeConstraintFolds(constraints, config, &rng);
    benchmark::DoNotOptimize(folds);
  }
}
BENCHMARK(BM_ConstraintFolds)->Arg(25)->Arg(50)->Arg(100);

void BM_Optics(benchmark::State& state) {
  Dataset data = BenchData(static_cast<size_t>(state.range(0)), 5, 16);
  OpticsConfig config;
  config.min_pts = 5;
  for (auto _ : state) {
    auto result = RunOptics(data.points(), config);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_Optics)->Arg(25)->Arg(50)->Arg(100);

void BM_DendrogramAndFosc(benchmark::State& state) {
  Dataset data = BenchData(static_cast<size_t>(state.range(0)), 5, 16);
  OpticsConfig config;
  config.min_pts = 5;
  auto optics = RunOptics(data.points(), config);
  CVCP_CHECK(optics.ok());
  ConstraintSet constraints = BenchConstraints(data, 0.2);
  for (auto _ : state) {
    Dendrogram dg = Dendrogram::FromReachability(optics.value());
    auto fosc = ExtractClusters(dg, constraints, FoscConfig{});
    benchmark::DoNotOptimize(fosc);
  }
}
BENCHMARK(BM_DendrogramAndFosc)->Arg(25)->Arg(50)->Arg(100);

void BM_KMeans(benchmark::State& state) {
  Dataset data = BenchData(static_cast<size_t>(state.range(0)), 5, 16);
  KMeansConfig config;
  config.k = 5;
  config.n_init = 1;
  Rng rng(17);
  for (auto _ : state) {
    auto result = RunKMeans(data.points(), config, &rng);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_KMeans)->Arg(25)->Arg(50)->Arg(100);

void BM_MpckMeans(benchmark::State& state) {
  Dataset data = BenchData(static_cast<size_t>(state.range(0)), 5, 16);
  ConstraintSet constraints = BenchConstraints(data, 0.2);
  MpckMeansConfig config;
  config.k = 5;
  Rng rng(19);
  for (auto _ : state) {
    auto result = RunMpckMeans(data.points(), constraints, config, &rng);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_MpckMeans)->Arg(25)->Arg(50)->Arg(100);

// Distance-kernel policies head to head (Arg0: 0 = scalar-legacy,
// 1 = fixed-lane (SIMD-dispatched default), 2 = unrolled; Arg1: dims).
// The policy rides in as an explicit argument — no process-wide state is
// touched, exactly as the engine threads it through ExecutionContext.
void BM_SquaredEuclideanKernel(benchmark::State& state) {
  static constexpr DistanceKernelPolicy kPolicies[] = {
      DistanceKernelPolicy::kScalarLegacy,
      DistanceKernelPolicy::kFixedLane,
      DistanceKernelPolicy::kUnrolled,
  };
  const DistanceKernelPolicy policy =
      kPolicies[static_cast<size_t>(state.range(0))];
  Rng rng(41);
  std::vector<double> a(static_cast<size_t>(state.range(1)));
  std::vector<double> b(a.size());
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.NextDouble();
    b[i] = rng.NextDouble();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(SquaredEuclideanDistance(a, b, policy));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(a.size()));
}
BENCHMARK(BM_SquaredEuclideanKernel)
    ->Args({0, 16})
    ->Args({1, 16})
    ->Args({2, 16})
    ->Args({0, 128})
    ->Args({1, 128})
    ->Args({2, 128});

void BM_ConstraintFMeasure(benchmark::State& state) {
  Dataset data = BenchData(static_cast<size_t>(state.range(0)), 5, 8);
  ConstraintSet constraints = BenchConstraints(data, 0.3);
  Clustering clustering(data.labels());
  for (auto _ : state) {
    auto fm = EvaluateConstraintClassification(clustering, constraints);
    benchmark::DoNotOptimize(fm);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(constraints.size()));
}
BENCHMARK(BM_ConstraintFMeasure)->Arg(25)->Arg(50)->Arg(100);

// Serial-vs-parallel CVCP wall time on the engine's target workload: a
// 10-fold × 8-value MPCKMeans grid (80 clustering cells per run). Also
// cross-checks that every configuration selects the same parameter with
// the same score — the engine's determinism guarantee. The final rows
// feed measured cell_timings back into the cost model
// (CellCostModel::prior_timings): the "prior timings" row uses this
// process's first parallel run, the "file timings" row (only with
// --timings-file and an existing file) uses a *previous invocation's*
// timings, and with --timings-file the measured timings are saved so the
// next invocation starts measured-longest-first. With --store the same
// persistence runs through the artifact store instead of a flat file
// (the "store timings" row), exercising the cell-timings artifact kind.
void PrintCvcpScalingTable(const std::string& timings_file,
                           const std::string& store_dir) {
  Dataset data = BenchData(/*per_cluster=*/40, /*k=*/5, /*dims=*/16);
  Rng rng(23);
  auto labeled = SampleLabeledObjects(data, 0.3, &rng);
  CVCP_CHECK(labeled.ok());
  Supervision supervision = Supervision::FromLabels(data, labeled.value());

  MpckMeansClusterer clusterer;
  CvcpConfig config;
  config.cv.n_folds = 10;
  config.param_grid = {2, 3, 4, 5, 6, 7, 8, 9};
  config.collect_timings = true;

  const int hw = static_cast<int>(
      std::max(1u, std::thread::hardware_concurrency()));
  std::vector<int> thread_counts = {1};
  if (hw >= 2) thread_counts.push_back(2);
  if (hw > 2) thread_counts.push_back(hw);

  std::printf(
      "=== CVCP serial vs parallel "
      "(MPCKMeans, %d-fold x %zu-value grid, n=%zu, %d hardware threads) "
      "===\n",
      config.cv.n_folds, config.param_grid.size(), data.size(), hw);
  std::printf("%-16s %8s %12s %10s %10s %s\n", "cost model", "threads",
              "wall_ms", "speedup", "efficiency", "matches serial");

  double serial_ms = 0.0;
  int serial_best = 0;
  double serial_score = 0.0;
  std::vector<CvCellTiming> measured;
  auto run_row = [&](const char* label, int threads) {
    config.cv.exec.threads = threads;
    Rng run_rng(29);
    const auto start = std::chrono::steady_clock::now();
    auto report = RunCvcp(data, supervision, clusterer, config, &run_rng);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    CVCP_CHECK(report.ok());
    // The first row's measured timings feed the cost-model rows and the
    // timings file (the serial baseline on single-core machines).
    if (measured.empty()) measured = report->cell_timings;
    if (threads == 1) {
      serial_ms = ms;
      serial_best = report->best_param;
      serial_score = report->best_score;
      std::printf("%-16s %8d %12.1f %9.2fx %9.2f%% %s\n", label, threads, ms,
                  1.0, 100.0, "(baseline)");
      AddJsonRow(Format(
          "{\"table\": \"cvcp_scaling\", \"mode\": \"%s\", \"threads\": %d, "
          "\"wall_ms\": %.3f, \"speedup\": 1.0, \"matches\": true}",
          label, threads, ms));
    } else {
      const bool matches = report->best_param == serial_best &&
                           BitsEqual(report->best_score, serial_score);
      if (!matches) g_determinism_ok = false;
      const double speedup = serial_ms / ms;
      std::printf("%-16s %8d %12.1f %9.2fx %9.2f%% %s\n", label, threads, ms,
                  speedup, 100.0 * speedup / threads,
                  matches ? "yes" : "NO — DETERMINISM BUG");
      AddJsonRow(Format(
          "{\"table\": \"cvcp_scaling\", \"mode\": \"%s\", \"threads\": %d, "
          "\"wall_ms\": %.3f, \"speedup\": %.3f, \"matches\": %s}",
          label, threads, ms, speedup, matches ? "true" : "false"));
    }
  };
  for (int threads : thread_counts) {
    run_row(threads == 1 ? "(serial)" : "size estimate", threads);
  }
  if (hw >= 2) {
    // Re-run at full width with the measured timings as the cost model.
    config.cv.cost.prior_timings = measured;
    run_row("prior timings", hw);
    config.cv.cost.prior_timings.clear();
  }
  if (!timings_file.empty()) {
    // Cost model persisted across invocations: drive a row from the
    // previous process's measured timings, then save this run's.
    auto loaded = cvcp::bench::LoadCellTimings(timings_file);
    if (loaded.ok() && hw >= 2) {
      config.cv.cost.prior_timings = std::move(loaded).value();
      run_row("file timings", hw);
      config.cv.cost.prior_timings.clear();
    }
    const Status saved = cvcp::bench::SaveCellTimings(timings_file, measured);
    if (!saved.ok()) {
      std::fprintf(stderr, "%s\n", saved.ToString().c_str());
    } else {
      std::printf("saved %zu cell timings to %s\n", measured.size(),
                  timings_file.c_str());
    }
  }
  if (!store_dir.empty()) {
    // Same persistence through the artifact store: a previous
    // invocation's timings (if any) drive a row, then this run's measured
    // timings are saved under the dataset's content hash.
    ArtifactStore store(store_dir);
    const uint64_t key = HashMatrixContent(data.points());
    auto prior = store.LoadCellTimings(key, "bench_micro_cvcp");
    if (prior.ok() && hw >= 2) {
      config.cv.cost.prior_timings = std::move(prior).value();
      run_row("store timings", hw);
      config.cv.cost.prior_timings.clear();
    }
    const Status saved = store.SaveCellTimings(key, "bench_micro_cvcp",
                                               measured);
    if (!saved.ok()) {
      std::fprintf(stderr, "%s\n", saved.ToString().c_str());
    } else {
      std::printf("persisted %zu cell timings to store %s\n",
                  measured.size(), store_dir.c_str());
    }
  }
  std::printf("\n");
}

// The per-dataset compute cache on its target workload: FOSC-OPTICSDend,
// whose OPTICS + dendrogram stage is supervision-independent. Uncached,
// every (param, fold) cell plus the final run pays a full OPTICS pass
// with on-the-fly O(d) distances — G×F+1 OPTICS runs per CVCP invocation.
// With the cache, the condensed distance matrix is built once, OPTICS
// runs once per grid value (G builds, the other G×(F-1)+1 cells are memo
// hits), and every distance evaluation inside OPTICS is an O(1) lookup.
// The table prints per-stage wall time (distance build, OPTICS model
// builds) and hit counts next to the speedup columns, and cross-checks
// that cached reports match the uncached baseline bit for bit.
//
// With --store DIR two more rows run against the persistent tier: the
// "store-cold" row purges DIR and populates it, the "store-warm" row uses
// a *fresh* DatasetCache over the same directory — so every model on the
// warm row must come from disk (model_builds = 0, model_loads = G), which
// is the in-process rehearsal of the cross-process warm start. A warm row
// that rebuilds anything fails the run like a determinism bug would.
void PrintFoscCacheTable(int threads, const std::string& store_dir) {
  Dataset data = BenchData(/*per_cluster=*/40, /*k=*/5, /*dims=*/16);
  Rng rng(37);
  auto pool = BuildConstraintPool(data, 0.25, &rng);
  CVCP_CHECK(pool.ok());
  auto sampled = SampleConstraints(pool.value(), 0.5, &rng);
  CVCP_CHECK(sampled.ok());
  Supervision supervision =
      Supervision::FromConstraints(std::move(sampled).value());

  FoscOpticsDendClusterer clusterer;
  CvcpConfig config;
  config.cv.n_folds = 10;
  config.param_grid = {3, 4, 5, 6, 7, 8, 9, 10};
  const size_t cells =
      config.param_grid.size() * static_cast<size_t>(config.cv.n_folds) + 1;

  std::printf(
      "=== Per-dataset compute cache "
      "(FOSC-OPTICSDend, %d-fold x %zu-value MinPts grid = %zu OPTICS-"
      "dependent runs, n=%zu, %d threads) ===\n",
      config.cv.n_folds, config.param_grid.size(), cells, data.size(),
      threads);
  std::printf("%-10s %8s %12s %9s %7s %6s %10s %10s %8s %9s %s\n", "cache",
              "threads", "wall_ms", "speedup", "optics", "loads",
              "model_hit", "dist_b/h", "dist_ms", "optics_ms",
              "matches uncached");

  double baseline_ms = 0.0;
  CvcpReport baseline;
  auto run_row = [&](const char* label, bool cache_on, int row_threads,
                     ArtifactStore* store, bool expect_warm) {
    config.cv.exec.threads = row_threads;
    std::optional<DatasetCache> cache;
    if (cache_on) {
      cache.emplace(data.points(), DatasetCacheTiers{nullptr, store});
    }
    Rng run_rng(43);
    const auto start = std::chrono::steady_clock::now();
    auto report = RunCvcp(data, supervision, clusterer, config, &run_rng,
                          cache.has_value() ? &*cache : nullptr);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    CVCP_CHECK(report.ok());
    const bool is_baseline = !cache_on && row_threads == 1;
    if (is_baseline) {
      baseline_ms = ms;
      baseline = *report;
    }
    bool matches = report->best_param == baseline.best_param &&
                   BitsEqual(report->best_score, baseline.best_score);
    for (size_t g = 0; matches && g < baseline.scores.size(); ++g) {
      matches = BitsEqual(report->scores[g].score, baseline.scores[g].score);
    }
    matches = matches && report->final_clustering.assignment() ==
                             baseline.final_clustering.assignment();
    if (!is_baseline && !matches) g_determinism_ok = false;
    // Uncached rows run OPTICS once per cell by construction; cached rows
    // report the cache's actual build/load/hit counters.
    DatasetCache::Stats stats;
    if (cache.has_value()) stats = cache->stats();
    const bool warm_ok =
        !expect_warm || (stats.model_builds == 0 && stats.model_loads > 0);
    if (!warm_ok) g_determinism_ok = false;
    const uint64_t optics_runs =
        cache_on ? stats.model_builds : static_cast<uint64_t>(cells);
    char dist_col[32];
    std::snprintf(dist_col, sizeof(dist_col), "%llu/%llu",
                  static_cast<unsigned long long>(stats.distance_builds),
                  static_cast<unsigned long long>(stats.distance_hits));
    std::printf(
        "%-10s %8d %12.1f %8.2fx %7llu %6llu %10llu %10s %8.1f %9.1f %s\n",
        label, row_threads, ms, baseline_ms / ms,
        static_cast<unsigned long long>(optics_runs),
        static_cast<unsigned long long>(stats.model_loads),
        static_cast<unsigned long long>(stats.model_hits), dist_col,
        stats.distance_build_ms, stats.model_build_ms,
        is_baseline ? "(baseline)"
        : !matches  ? "NO — DETERMINISM BUG"
        : !warm_ok  ? "yes, but STORE NOT WARM"
                    : "yes");
    AddJsonRow(Format(
        "{\"table\": \"fosc_cache\", \"label\": \"%s\", \"threads\": %d, "
        "\"wall_ms\": %.3f, \"optics_runs\": %llu, \"model_builds\": %llu, "
        "\"model_loads\": %llu, \"model_hits\": %llu, "
        "\"dist_builds\": %llu, \"dist_loads\": %llu, \"dist_hits\": %llu, "
        "\"dist_ms\": %.3f, \"optics_ms\": %.3f, \"matches\": %s}",
        label, row_threads, ms,
        static_cast<unsigned long long>(optics_runs),
        static_cast<unsigned long long>(stats.model_builds),
        static_cast<unsigned long long>(stats.model_loads),
        static_cast<unsigned long long>(stats.model_hits),
        static_cast<unsigned long long>(stats.distance_builds),
        static_cast<unsigned long long>(stats.distance_loads),
        static_cast<unsigned long long>(stats.distance_hits),
        stats.distance_build_ms, stats.model_build_ms,
        matches && warm_ok ? "true" : "false"));
  };
  run_row("off", /*cache_on=*/false, /*row_threads=*/1, nullptr, false);
  run_row("on", /*cache_on=*/true, /*row_threads=*/1, nullptr, false);
  if (threads > 1) {
    run_row("off", /*cache_on=*/false, threads, nullptr, false);
    run_row("on", /*cache_on=*/true, threads, nullptr, false);
  }
  if (!store_dir.empty()) {
    ArtifactStore store(store_dir);
    auto purged = store.Purge();
    if (!purged.ok()) {
      std::fprintf(stderr, "%s\n", purged.status().ToString().c_str());
    }
    run_row("store-cold", /*cache_on=*/true, /*row_threads=*/1, &store,
            /*expect_warm=*/false);
    run_row("store-warm", /*cache_on=*/true, /*row_threads=*/1, &store,
            /*expect_warm=*/true);
    const ArtifactStore::Stats ss = store.stats();
    std::printf(
        "store %s: disk_hits=%llu disk_misses=%llu writes=%llu "
        "bytes_written=%llu bytes_read=%llu\n",
        store_dir.c_str(), static_cast<unsigned long long>(ss.disk_hits),
        static_cast<unsigned long long>(ss.disk_misses),
        static_cast<unsigned long long>(ss.writes),
        static_cast<unsigned long long>(ss.bytes_written),
        static_cast<unsigned long long>(ss.bytes_read));
    AddJsonRow(Format(
        "{\"table\": \"store\", \"dir\": \"%s\", \"disk_hits\": %llu, "
        "\"disk_misses\": %llu, \"corrupt_misses\": %llu, "
        "\"version_misses\": %llu, \"writes\": %llu, "
        "\"write_errors\": %llu, \"bytes_written\": %llu, "
        "\"bytes_read\": %llu}",
        store_dir.c_str(), static_cast<unsigned long long>(ss.disk_hits),
        static_cast<unsigned long long>(ss.disk_misses),
        static_cast<unsigned long long>(ss.corrupt_misses),
        static_cast<unsigned long long>(ss.version_misses),
        static_cast<unsigned long long>(ss.writes),
        static_cast<unsigned long long>(ss.write_errors),
        static_cast<unsigned long long>(ss.bytes_written),
        static_cast<unsigned long long>(ss.bytes_read)));
  }
  std::printf("\n");
}

// Shared row-runner for the two RunExperiment scaling tables: runs one
// engine configuration, prints wall time plus the derived
// speedup-vs-serial and efficiency (speedup / threads) columns, and
// cross-checks the engine's guarantee that every configuration produces
// bit-identical aggregates.
struct ExperimentScalingBaseline {
  double serial_ms = 0.0;
  uint64_t serial_mean_bits = 0;
  int serial_ok = 0;
};

void RunExperimentScalingRow(const Dataset& data,
                             const MpckMeansClusterer& clusterer,
                             cvcp::bench::TrialSpec spec, int trials,
                             const char* table, const char* label,
                             int threads, int trial_threads,
                             cvcp::NestingPolicy nesting,
                             ExperimentScalingBaseline* baseline) {
  spec.exec.threads = threads;
  spec.trial_threads = trial_threads;
  spec.nesting = nesting;
  const auto start = std::chrono::steady_clock::now();
  const cvcp::bench::CellAggregate agg =
      cvcp::bench::RunExperiment(data, clusterer, spec, trials, /*seed=*/31);
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  const uint64_t mean_bits = std::bit_cast<uint64_t>(agg.cvcp_mean);
  if (threads == 1) {
    baseline->serial_ms = ms;
    baseline->serial_mean_bits = mean_bits;
    baseline->serial_ok = agg.trials_ok;
    std::printf("%-14s %8d %12.1f %9.2fx %9.2f%% %s\n", label, threads, ms,
                1.0, 100.0, "(baseline)");
    AddJsonRow(Format(
        "{\"table\": \"%s\", \"mode\": \"%s\", \"threads\": %d, "
        "\"wall_ms\": %.3f, \"speedup\": 1.0, \"matches\": true}",
        table, label, threads, ms));
  } else {
    const bool matches = mean_bits == baseline->serial_mean_bits &&
                         agg.trials_ok == baseline->serial_ok;
    if (!matches) g_determinism_ok = false;
    const double speedup = baseline->serial_ms / ms;
    std::printf("%-14s %8d %12.1f %9.2fx %9.2f%% %s\n", label, threads, ms,
                speedup, 100.0 * speedup / threads,
                matches ? "yes" : "NO — DETERMINISM BUG");
    AddJsonRow(Format(
        "{\"table\": \"%s\", \"mode\": \"%s\", \"threads\": %d, "
        "\"wall_ms\": %.3f, \"speedup\": %.3f, \"matches\": %s}",
        table, label, threads, ms, speedup, matches ? "true" : "false"));
  }
}

// Serial-vs-parallel wall time for the *trial-level* fan-out in
// RunExperiment on a wide outer loop (many trials): fully serial, inner
// (CVCP grid×fold) parallelism only (`trial_threads = 1`, the
// pre-trial-parallel engine), the all-or-nothing budget split, and the
// nested-width scheduler.
void PrintTrialScalingTable() {
  Dataset data = BenchData(/*per_cluster=*/25, /*k=*/4, /*dims=*/8);
  MpckMeansClusterer clusterer;

  const int hw = static_cast<int>(
      std::max(1u, std::thread::hardware_concurrency()));
  cvcp::bench::TrialSpec spec;
  spec.scenario = cvcp::bench::Scenario::kLabels;
  spec.level = 0.20;
  spec.n_folds = 5;
  spec.grid = {2, 3, 4, 5};
  const int trials = std::max(8, hw);

  std::printf(
      "=== RunExperiment serial vs trial-parallel "
      "(MPCKMeans, %d trials, %d-fold x %zu-value grid, n=%zu, "
      "%d hardware threads) ===\n",
      trials, spec.n_folds, spec.grid.size(), data.size(), hw);
  std::printf("%-14s %8s %12s %10s %10s %s\n", "mode", "threads", "wall_ms",
              "speedup", "efficiency", "matches serial");

  ExperimentScalingBaseline baseline;
  RunExperimentScalingRow(data, clusterer, spec, trials, "trial_scaling",
                          "serial", 1, 1, NestingPolicy::kSplit, &baseline);
  if (hw >= 2) {
    RunExperimentScalingRow(data, clusterer, spec, trials, "trial_scaling",
                            "CVCP-level", hw, 1, NestingPolicy::kSplit,
                            &baseline);
    RunExperimentScalingRow(data, clusterer, spec, trials, "trial_scaling",
                            "trial-level", hw, 0, NestingPolicy::kSplit,
                            &baseline);
    RunExperimentScalingRow(data, clusterer, spec, trials, "trial_scaling",
                            "nested", hw, 0, NestingPolicy::kNested,
                            &baseline);
  }
  std::printf("\n");
}

// The nested scheduler's target scenario: a *narrow* outer loop (few
// trials) with a wide inner loop (big grid × folds). The all-or-nothing
// split can only spend the budget at one level — serial trials with
// parallel cells — so each trial's fold-build/final-clustering sections
// and cell tails leave the budget idle. The nested-width mode runs trial
// lanes and their CVCP cells concurrently (lanes × inner width ≈ budget)
// and help-while-waiting keeps every thread busy until the last cell, so
// its throughput should be >= the split row's. Uses an explicit 4-thread
// budget (not hw) so the comparison also exercises queueing on small
// machines; the determinism column shows results never depend on any of
// this.
void PrintNestedVsSplitTable() {
  Dataset data = BenchData(/*per_cluster=*/30, /*k=*/4, /*dims=*/8);
  MpckMeansClusterer clusterer;

  const int hw = static_cast<int>(
      std::max(1u, std::thread::hardware_concurrency()));
  const int budget = std::max(4, hw);
  cvcp::bench::TrialSpec spec;
  spec.scenario = cvcp::bench::Scenario::kLabels;
  spec.level = 0.20;
  spec.n_folds = 5;
  spec.grid = {2, 3, 4, 5, 6, 7, 8, 9};
  const int trials = 2;

  std::printf(
      "=== Nested-width vs split-budget scheduler, few-trials x large-grid "
      "(MPCKMeans, %d trials, %d-fold x %zu-value grid = %zu cells/trial, "
      "n=%zu, budget %d, %d hardware threads) ===\n",
      trials, spec.n_folds, spec.grid.size(),
      spec.grid.size() * static_cast<size_t>(spec.n_folds), data.size(),
      budget, hw);
  std::printf("%-14s %8s %12s %10s %10s %s\n", "mode", "threads", "wall_ms",
              "speedup", "efficiency", "matches serial");

  ExperimentScalingBaseline baseline;
  RunExperimentScalingRow(data, clusterer, spec, trials, "nested_vs_split",
                          "serial", 1, 1, NestingPolicy::kSplit, &baseline);
  RunExperimentScalingRow(data, clusterer, spec, trials, "nested_vs_split",
                          "split-budget", budget, 0, NestingPolicy::kSplit,
                          &baseline);
  RunExperimentScalingRow(data, clusterer, spec, trials, "nested_vs_split",
                          "nested-width", budget, 0, NestingPolicy::kNested,
                          &baseline);
  std::printf("\n");
}

// Distance-matrix build across the kernel × tiling × storage space on a
// 64-dimensional blob set. The untiled scalar-legacy row is the pre-SIMD
// baseline; the tiled fixed-lane row is today's default configuration and
// its speedup column is the headline number (the CI acceptance bar is
// >= 2x on this >= 32-dim dataset). Value checks ride along: the tiled
// build must reproduce the untiled build bit for bit *per kernel policy*
// and for any thread count, and the f32 row must hold exactly
// float(f64_value) in every slot. Any check failure flips the process
// exit code via g_determinism_ok, like the other tables.
void PrintDistanceKernelTable() {
  Rng rng(53);
  Dataset data = MakeBlobs("kernel-bench", /*k=*/8, /*per_cluster=*/64,
                           /*dims=*/64, 10.0, 1.0, &rng);
  const Matrix& pts = data.points();
  const Metric metric = Metric::kEuclidean;

  ExecutionContext legacy = ExecutionContext::Serial();
  legacy.distance_kernel = DistanceKernelPolicy::kScalarLegacy;
  ExecutionContext fixed = ExecutionContext::Serial();
  fixed.distance_kernel = DistanceKernelPolicy::kFixedLane;

  std::printf(
      "=== Distance-matrix build: kernel x tiling x storage "
      "(n=%zu, d=%zu, euclidean, arch=%s) ===\n",
      pts.rows(), pts.cols(), DistanceKernelArch());
  std::printf("%-24s %10s %9s  %s\n", "configuration", "wall_ms", "speedup",
              "values");

  // Best-of-5 wall time; the first build is kept for the value checks.
  auto time_best = [&](const std::function<DistanceMatrix()>& build,
                       std::optional<DistanceMatrix>* out) {
    double best = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < 5; ++rep) {
      const auto start = std::chrono::steady_clock::now();
      DistanceMatrix m = build();
      const double ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - start)
                            .count();
      best = std::min(best, ms);
      if (rep == 0) *out = std::move(m);
    }
    return best;
  };
  auto same_f64 = [](const DistanceMatrix& a, const DistanceMatrix& b) {
    const std::vector<double>& x = a.condensed();
    const std::vector<double>& y = b.condensed();
    if (x.size() != y.size()) return false;
    for (size_t i = 0; i < x.size(); ++i) {
      if (!BitsEqual(x[i], y[i])) return false;
    }
    return true;
  };

  std::optional<DistanceMatrix> untiled_legacy, untiled_fixed, tiled_legacy,
      tiled_fixed, tiled_fixed_t8, tiled_f32;
  const double ms_untiled_legacy = time_best(
      [&] { return DistanceMatrix::ComputeUntiled(pts, metric, legacy); },
      &untiled_legacy);
  const double ms_untiled_fixed = time_best(
      [&] { return DistanceMatrix::ComputeUntiled(pts, metric, fixed); },
      &untiled_fixed);
  const double ms_tiled_legacy = time_best(
      [&] { return DistanceMatrix::Compute(pts, metric, legacy); },
      &tiled_legacy);
  const double ms_tiled_fixed = time_best(
      [&] { return DistanceMatrix::Compute(pts, metric, fixed); },
      &tiled_fixed);
  ExecutionContext fixed8 = fixed;
  fixed8.threads = 8;
  const double ms_tiled_fixed_t8 = time_best(
      [&] { return DistanceMatrix::Compute(pts, metric, fixed8); },
      &tiled_fixed_t8);
  const double ms_tiled_f32 = time_best(
      [&] {
        return DistanceMatrix::Compute(pts, metric, fixed,
                                       DistanceStorage::kF32);
      },
      &tiled_f32);

  const bool tiled_legacy_ok = same_f64(*tiled_legacy, *untiled_legacy);
  const bool tiled_fixed_ok = same_f64(*tiled_fixed, *untiled_fixed);
  const bool threads_ok = same_f64(*tiled_fixed_t8, *tiled_fixed);
  bool f32_ok =
      tiled_f32->condensed32().size() == tiled_fixed->condensed().size();
  for (size_t i = 0; f32_ok && i < tiled_f32->condensed32().size(); ++i) {
    f32_ok = std::bit_cast<uint32_t>(tiled_f32->condensed32()[i]) ==
             std::bit_cast<uint32_t>(
                 NarrowToF32(tiled_fixed->condensed()[i]));
  }
  if (!tiled_legacy_ok || !tiled_fixed_ok || !threads_ok || !f32_ok) {
    g_determinism_ok = false;
  }

  auto emit = [&](const char* label, const char* kernel, bool tiled,
                  const char* storage, int threads, double ms,
                  const char* values, bool values_ok) {
    const double speedup = ms_untiled_legacy / ms;
    std::printf("%-24s %10.2f %8.2fx  %s\n", label, ms, speedup, values);
    AddDistanceRow(Format(
        "{\"table\": \"distance_build\", \"config\": \"%s\", "
        "\"kernel\": \"%s\", \"tiled\": %s, \"storage\": \"%s\", "
        "\"threads\": %d, \"n\": %zu, \"dims\": %zu, \"wall_ms\": %.4f, "
        "\"speedup\": %.3f, \"values_ok\": %s}",
        label, kernel, tiled ? "true" : "false", storage, threads,
        pts.rows(), pts.cols(), ms, speedup, values_ok ? "true" : "false"));
  };
  emit("untiled-scalar-legacy", "scalar-legacy", false, "f64", 1,
       ms_untiled_legacy, "(baseline)", true);
  emit("untiled-fixed-lane", "fixed-lane", false, "f64", 1, ms_untiled_fixed,
       "(fixed-lane reference)", true);
  emit("tiled-scalar-legacy", "scalar-legacy", true, "f64", 1,
       ms_tiled_legacy,
       tiled_legacy_ok ? "bitwise == untiled-scalar-legacy"
                       : "NO — TILING CHANGED VALUES",
       tiled_legacy_ok);
  emit("tiled-fixed-lane", "fixed-lane", true, "f64", 1, ms_tiled_fixed,
       tiled_fixed_ok ? "bitwise == untiled-fixed-lane"
                      : "NO — TILING CHANGED VALUES",
       tiled_fixed_ok);
  emit("tiled-fixed-lane", "fixed-lane", true, "f64", 8, ms_tiled_fixed_t8,
       threads_ok ? "bitwise == 1-thread build"
                  : "NO — THREAD COUNT CHANGED VALUES",
       threads_ok);
  emit("tiled-fixed-lane-f32", "fixed-lane", true, "f32", 1, ms_tiled_f32,
       f32_ok ? "== float(f64 values) exactly"
              : "NO — F32 NARROWING MISMATCH",
       f32_ok);
  const double headline = ms_untiled_legacy / ms_tiled_fixed;
  std::printf("default (tiled fixed-lane) vs scalar-legacy baseline: "
              "%.2fx %s\n\n",
              headline, headline >= 2.0 ? "(meets the 2x bar)"
                                        : "(below the 2x bar)");
}

// Does float32 distance storage change what CVCP *selects*? Runs the
// FOSC-OPTICSDend sweep (the algorithm whose entire pipeline sits on the
// cached matrix) on several blob datasets, once with an f64-storage cache
// and once with f32, and reports selection agreement plus the largest
// best-score drift. Informational: rounding-induced drift here is
// expected and bounded, not a determinism bug — within a storage mode
// results stay bitwise-reproducible.
void PrintStorageAblationTable() {
  FoscOpticsDendClusterer clusterer;
  CvcpConfig config;
  config.cv.n_folds = 5;
  config.param_grid = {3, 4, 5, 6, 7, 8};
  constexpr int kDatasets = 5;

  std::printf(
      "=== f32 vs f64 distance storage: CVCP selection agreement "
      "(FOSC-OPTICSDend, %d-fold x %zu-value MinPts grid, %d datasets) "
      "===\n",
      config.cv.n_folds, config.param_grid.size(), kDatasets);
  std::printf("%-10s %10s %10s %8s %14s\n", "dataset", "pick(f64)",
              "pick(f32)", "agree", "|score drift|");

  int agreements = 0;
  double max_drift = 0.0;
  for (int d = 0; d < kDatasets; ++d) {
    Rng rng(100 + d);
    Dataset data = MakeBlobs(Format("abl%d", d), /*k=*/4, /*per_cluster=*/30,
                             /*dims=*/16, 10.0, 1.0, &rng);
    auto pool = BuildConstraintPool(data, 0.25, &rng);
    CVCP_CHECK(pool.ok());
    auto sampled = SampleConstraints(pool.value(), 0.5, &rng);
    CVCP_CHECK(sampled.ok());
    Supervision supervision =
        Supervision::FromConstraints(std::move(sampled).value());
    int best[2] = {0, 0};
    double score[2] = {0.0, 0.0};
    for (int s = 0; s < 2; ++s) {
      DatasetCache cache(
          data.points(),
          DatasetCacheTiers{nullptr, nullptr,
                            s == 0 ? DistanceStorage::kF64
                                   : DistanceStorage::kF32});
      Rng run_rng(71);
      auto report = RunCvcp(data, supervision, clusterer, config, &run_rng,
                            &cache);
      CVCP_CHECK(report.ok());
      best[s] = report->best_param;
      score[s] = report->best_score;
    }
    const bool agree = best[0] == best[1];
    agreements += agree ? 1 : 0;
    const double drift = std::abs(score[0] - score[1]);
    max_drift = std::max(max_drift, drift);
    std::printf("%-10d %10d %10d %8s %14.3e\n", d, best[0], best[1],
                agree ? "yes" : "no", drift);
  }
  std::printf("selection agreement: %d/%d, max |best-score drift| %.3e\n\n",
              agreements, kDatasets, max_drift);
  AddDistanceRow(Format(
      "{\"table\": \"f32_ablation\", \"datasets\": %d, \"agreements\": %d, "
      "\"max_best_score_drift\": %.6e}",
      kDatasets, agreements, max_drift));
}

// This binary's own flags, stripped from argv before google-benchmark
// sees the rest.
struct MicroOptions {
  int threads = 0;           // 0 = all hardware threads (cache table width)
  std::string timings_file;  // persist CVCP cell timings across invocations
  bool cache_table_only = false;  // print the cache table and exit (CI smoke)
  std::string store_dir;  // artifact store dir: store-cold/warm rows + timings
  std::string json_path = "BENCH_micro.json";  // "" (via --json '') disables
  // Standalone report for the distance-build + f32-ablation rows
  // (--distance-json PATH; '' disables). Skipped in --cache-table-only
  // mode, which doesn't run those tables.
  std::string distance_json_path = "BENCH_distance.json";
};

MicroOptions StripMicroOptions(int* argc, char** argv) {
  MicroOptions o;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < *argc) {
      o.threads = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--timings-file") == 0 && i + 1 < *argc) {
      o.timings_file = argv[++i];
    } else if (std::strcmp(argv[i], "--cache-table-only") == 0) {
      o.cache_table_only = true;
    } else if (std::strcmp(argv[i], "--store") == 0 && i + 1 < *argc) {
      o.store_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < *argc) {
      o.json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--distance-json") == 0 && i + 1 < *argc) {
      o.distance_json_path = argv[++i];
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  if (o.threads < 0) o.threads = 0;
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const MicroOptions options = StripMicroOptions(&argc, argv);
  const int hw = static_cast<int>(
      std::max(1u, std::thread::hardware_concurrency()));
  const int table_threads = options.threads > 0 ? options.threads : hw;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (options.cache_table_only) {
    PrintFoscCacheTable(table_threads, options.store_dir);
    if (!options.json_path.empty()) WriteJsonReport(options.json_path);
    benchmark::Shutdown();
    return g_determinism_ok ? 0 : 1;
  }
  PrintDistanceKernelTable();
  PrintStorageAblationTable();
  PrintCvcpScalingTable(options.timings_file, options.store_dir);
  PrintTrialScalingTable();
  PrintNestedVsSplitTable();
  PrintFoscCacheTable(table_threads, options.store_dir);
  if (!options.json_path.empty()) WriteJsonReport(options.json_path);
  if (!options.distance_json_path.empty()) {
    WriteDistanceJsonReport(options.distance_json_path);
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  // Nonzero on any "NO — DETERMINISM BUG" row so the CI smoke steps fail
  // on a regression instead of only printing it.
  return g_determinism_ok ? 0 : 1;
}
