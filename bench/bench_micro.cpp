// Micro-benchmarks (google-benchmark) for the core primitives: constraint
// closure, fold splitting, OPTICS, k-means, MPCKMeans iterations, FOSC
// extraction and the constraint F-measure. These track the cost model
// behind the paper-scale benches.

#include <benchmark/benchmark.h>

#include "cluster/dendrogram.h"
#include "cluster/fosc.h"
#include "cluster/kmeans.h"
#include "cluster/mpckmeans.h"
#include "cluster/optics.h"
#include "common/rng.h"
#include "constraints/folds.h"
#include "constraints/oracle.h"
#include "constraints/transitive_closure.h"
#include "core/fmeasure.h"
#include "data/generators.h"

namespace {

using namespace cvcp;  // NOLINT

Dataset BenchData(size_t per_cluster, int k, size_t dims) {
  Rng rng(7);
  return MakeBlobs("bench", k, per_cluster, dims, 10.0, 1.0, &rng);
}

ConstraintSet BenchConstraints(const Dataset& data, double frac) {
  Rng rng(11);
  auto pool = BuildConstraintPool(data, frac, &rng);
  CVCP_CHECK(pool.ok());
  return std::move(pool).value();
}

void BM_TransitiveClosure(benchmark::State& state) {
  Dataset data = BenchData(static_cast<size_t>(state.range(0)), 5, 8);
  ConstraintSet constraints = BenchConstraints(data, 0.2);
  for (auto _ : state) {
    auto closure = TransitiveClosure(constraints);
    benchmark::DoNotOptimize(closure);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(constraints.size()));
}
BENCHMARK(BM_TransitiveClosure)->Arg(25)->Arg(50)->Arg(100);

void BM_ConstraintFolds(benchmark::State& state) {
  Dataset data = BenchData(static_cast<size_t>(state.range(0)), 5, 8);
  ConstraintSet constraints = BenchConstraints(data, 0.2);
  Rng rng(13);
  FoldConfig config;
  config.n_folds = 5;
  for (auto _ : state) {
    auto folds = MakeConstraintFolds(constraints, config, &rng);
    benchmark::DoNotOptimize(folds);
  }
}
BENCHMARK(BM_ConstraintFolds)->Arg(25)->Arg(50)->Arg(100);

void BM_Optics(benchmark::State& state) {
  Dataset data = BenchData(static_cast<size_t>(state.range(0)), 5, 16);
  OpticsConfig config;
  config.min_pts = 5;
  for (auto _ : state) {
    auto result = RunOptics(data.points(), config);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_Optics)->Arg(25)->Arg(50)->Arg(100);

void BM_DendrogramAndFosc(benchmark::State& state) {
  Dataset data = BenchData(static_cast<size_t>(state.range(0)), 5, 16);
  OpticsConfig config;
  config.min_pts = 5;
  auto optics = RunOptics(data.points(), config);
  CVCP_CHECK(optics.ok());
  ConstraintSet constraints = BenchConstraints(data, 0.2);
  for (auto _ : state) {
    Dendrogram dg = Dendrogram::FromReachability(optics.value());
    auto fosc = ExtractClusters(dg, constraints, FoscConfig{});
    benchmark::DoNotOptimize(fosc);
  }
}
BENCHMARK(BM_DendrogramAndFosc)->Arg(25)->Arg(50)->Arg(100);

void BM_KMeans(benchmark::State& state) {
  Dataset data = BenchData(static_cast<size_t>(state.range(0)), 5, 16);
  KMeansConfig config;
  config.k = 5;
  config.n_init = 1;
  Rng rng(17);
  for (auto _ : state) {
    auto result = RunKMeans(data.points(), config, &rng);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_KMeans)->Arg(25)->Arg(50)->Arg(100);

void BM_MpckMeans(benchmark::State& state) {
  Dataset data = BenchData(static_cast<size_t>(state.range(0)), 5, 16);
  ConstraintSet constraints = BenchConstraints(data, 0.2);
  MpckMeansConfig config;
  config.k = 5;
  Rng rng(19);
  for (auto _ : state) {
    auto result = RunMpckMeans(data.points(), constraints, config, &rng);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_MpckMeans)->Arg(25)->Arg(50)->Arg(100);

void BM_ConstraintFMeasure(benchmark::State& state) {
  Dataset data = BenchData(static_cast<size_t>(state.range(0)), 5, 8);
  ConstraintSet constraints = BenchConstraints(data, 0.3);
  Clustering clustering(data.labels());
  for (auto _ : state) {
    auto fm = EvaluateConstraintClassification(clustering, constraints);
    benchmark::DoNotOptimize(fm);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(constraints.size()));
}
BENCHMARK(BM_ConstraintFMeasure)->Arg(25)->Arg(50)->Arg(100);

}  // namespace

BENCHMARK_MAIN();
