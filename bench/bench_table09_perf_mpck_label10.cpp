// bench_table09_perf_mpck_label10: reproduces Table 9 of the paper.
#include "harness/options.h"
#include "harness/paper_bench.h"

int main(int argc, char** argv) {
  using namespace cvcp::bench;
  const BenchOptions options = ParseBenchOptions(argc, argv);
  PrintBanner(options, "Table 9: MPCKmeans (label scenario) — average performance, 10% labeled objects", "Table 9");
  PaperBenchContext ctx = MakeContext(options);
  RunPerformanceTable(ctx, BenchAlgo::kMpck, Scenario::kLabels, 0.1,
                      "Table 9: MPCKmeans (label scenario) — average performance, 10% labeled objects");
  PrintStoreStats(ctx);
  return 0;
}
