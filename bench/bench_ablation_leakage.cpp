// bench_ablation_leakage: quantifies the pitfall the paper's §3.1 is about.
// Compares the sound Scenario-II splitter (object partition + graph cut +
// per-side closure) against the naive splitter that deals the constraint
// list into folds. The "naive leaked %" column shows that half to three
// quarters of the naive protocol's test constraints are already implied by
// its training closure — it is scoring the clusterer on information it has
// effectively seen — and both protocols' CV estimates are compared against
// the true constraint-classification quality on fresh supervision.

#include <cmath>
#include <cstdio>

#include "common/stats.h"
#include "common/strings.h"
#include "common/table.h"
#include "constraints/oracle.h"
#include "constraints/transitive_closure.h"
#include "core/cross_validation.h"
#include "core/fmeasure.h"
#include "harness/options.h"
#include "harness/paper_bench.h"

namespace {

using namespace cvcp;  // NOLINT

struct LeakStats {
  double mean_f = 0.0;        // CV F-measure under this protocol
  double leaked_fraction = 0; // test constraints derivable from train side
};

LeakStats RunProtocol(const Dataset& data, const ConstraintSet& sampled,
                      bool sound, int n_folds, Rng* rng) {
  LeakStats out;
  FoldConfig config;
  config.n_folds = n_folds;
  auto folds = sound ? MakeConstraintFolds(sampled, config, rng)
                     : MakeNaiveConstraintFolds(sampled, config, rng);
  if (!folds.ok()) return out;

  FoscOpticsDendClusterer clusterer;
  double f_sum = 0.0;
  int f_n = 0;
  size_t leaked = 0, total = 0;
  for (const FoldSplit& fold : *folds) {
    auto train_closure = TransitiveClosure(fold.train_constraints);
    if (train_closure.ok()) {
      for (const Constraint& c : fold.test_constraints.all()) {
        ++total;
        if (train_closure->Lookup(c.a, c.b).has_value()) ++leaked;
      }
    }
    Supervision train = Supervision::FromConstraints(fold.train_constraints);
    Rng run_rng = rng->Fork(91);
    auto clustering = clusterer.Cluster(data, train, /*MinPts=*/6, &run_rng);
    if (!clustering.ok()) continue;
    const ConstraintFMeasure fm = EvaluateConstraintClassification(
        clustering.value(), fold.test_constraints);
    if (!std::isnan(fm.average)) {
      f_sum += fm.average;
      ++f_n;
    }
  }
  out.mean_f = f_n > 0 ? f_sum / f_n : std::nan("");
  out.leaked_fraction =
      total > 0 ? static_cast<double>(leaked) / static_cast<double>(total)
                : 0.0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cvcp::bench;
  const BenchOptions options = ParseBenchOptions(argc, argv);
  PrintBanner(options, "Ablation: sound vs naive constraint CV (leakage)",
              "the §3.1 pitfall, measured");
  PaperBenchContext ctx = MakeContext(options);

  TextTable table(
      "Constraint-scenario CV (FOSC, MinPts=6, 50% of pool). \"truth F\" = "
      "constraint classification on a FRESH pool over uninvolved objects "
      "(what CV is trying to estimate); bias = CV estimate - truth. The "
      "uniform-noise control has no structure, so nothing generalizes "
      "there.");
  table.SetHeader({"dataset", "truth F", "sound bias", "naive bias",
                   "naive leaked %"});
  double sound_bias_sum = 0.0, naive_bias_sum = 0.0;
  int over_n = 0;

  // Structureless control: uniform points with arbitrary "classes". A
  // clustering cannot genuinely predict held-out constraints here; the
  // naive protocol still scores high because the training closure implies
  // a large share of its test constraints.
  std::vector<Dataset> datasets;
  {
    Rng noise_rng(options.seed ^ 0xA015EULL);
    Matrix pts(125, 10);
    std::vector<int> labels(125);
    for (size_t i = 0; i < 125; ++i) {
      for (size_t m = 0; m < 10; ++m) pts.At(i, m) = noise_rng.NextDouble();
      labels[i] = static_cast<int>(i % 5);
    }
    datasets.emplace_back("Uniform-noise", std::move(pts), std::move(labels));
  }
  const size_t shown = std::min<size_t>(ctx.aloi.size(), 6);
  for (size_t d = 0; d < shown; ++d) datasets.push_back(ctx.aloi[d]);

  for (size_t d = 0; d < datasets.size(); ++d) {
    const Dataset& data = datasets[d];
    Rng rng(options.seed + d);
    auto pool = BuildConstraintPool(data, 0.10, &rng);
    if (!pool.ok()) continue;
    auto sampled = SampleConstraints(pool.value(), 0.5, &rng);
    if (!sampled.ok()) continue;

    Rng rng_sound(options.seed + 100 + d);
    Rng rng_naive(options.seed + 100 + d);
    const LeakStats sound =
        RunProtocol(data, sampled.value(), true, options.n_folds, &rng_sound);
    const LeakStats naive =
        RunProtocol(data, sampled.value(), false, options.n_folds,
                    &rng_naive);

    // Ground truth: train on ALL sampled constraints, evaluate on a fresh
    // pool drawn from the objects not involved in the supervision.
    double truth_f = std::nan("");
    {
      Supervision train = Supervision::FromConstraints(sampled.value());
      FoscOpticsDendClusterer clusterer;
      Rng run_rng(options.seed + 500 + d);
      auto clustering = clusterer.Cluster(data, train, /*MinPts=*/6,
                                          &run_rng);
      if (clustering.ok()) {
        // Fresh pool over uninvolved objects, same construction as the
        // training pool.
        std::vector<bool> involved =
            train.constraints().InvolvementMask(data.size());
        std::vector<int> masked_labels(data.size(), -1);
        std::vector<size_t> free_objects;
        for (size_t o = 0; o < data.size(); ++o) {
          if (!involved[o]) free_objects.push_back(o);
        }
        Rng fresh_rng(options.seed + 900 + d);
        std::vector<size_t> fresh =
            fresh_rng.SampleFrom(free_objects,
                                 std::min<size_t>(free_objects.size(), 20));
        ConstraintSet truth_pool =
            ConstraintSet::FromLabels(data.labels(), fresh);
        const ConstraintFMeasure fm = EvaluateConstraintClassification(
            clustering.value(), truth_pool);
        truth_f = fm.average;
      }
    }
    sound_bias_sum += sound.mean_f - truth_f;
    naive_bias_sum += naive.mean_f - truth_f;
    ++over_n;
    table.AddRow({data.name(), FormatDouble(truth_f),
                  Format("%+.4f", sound.mean_f - truth_f),
                  Format("%+.4f", naive.mean_f - truth_f),
                  Format("%.1f%%", naive.leaked_fraction * 100.0)});
  }
  std::fputs(table.Render().c_str(), stdout);
  if (over_n > 0) {
    std::printf(
        "\nmean bias vs truth — sound: %+.4f, naive: %+.4f. A protocol "
        "whose test\nconstraints are derivable from its training closure "
        "cannot measure\ngeneralization.\n",
        sound_bias_sum / over_n, naive_bias_sum / over_n);
  }
  PrintStoreStats(ctx);
  return 0;
}
