// bench_table07_perf_fosc_label20: reproduces Table 7 of the paper.
#include "harness/options.h"
#include "harness/paper_bench.h"

int main(int argc, char** argv) {
  using namespace cvcp::bench;
  const BenchOptions options = ParseBenchOptions(argc, argv);
  PrintBanner(options, "Table 7: FOSC-OPTICSDend (label scenario) — average performance, 20% labeled objects", "Table 7");
  PaperBenchContext ctx = MakeContext(options);
  RunPerformanceTable(ctx, BenchAlgo::kFosc, Scenario::kLabels, 0.2,
                      "Table 7: FOSC-OPTICSDend (label scenario) — average performance, 20% labeled objects");
  PrintStoreStats(ctx);
  return 0;
}
