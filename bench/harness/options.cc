#include "harness/options.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/distance.h"
#include "common/strings.h"

namespace cvcp::bench {

namespace {

long EnvLong(const char* name, long fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

/// "nested" / "split" → policy; anything else keeps `fallback`.
NestingPolicy ParseScheduler(const char* v, NestingPolicy fallback) {
  if (v == nullptr) return fallback;
  if (std::strcmp(v, "nested") == 0) return NestingPolicy::kNested;
  if (std::strcmp(v, "split") == 0) return NestingPolicy::kSplit;
  return fallback;
}

/// "on"/"1" → true, "off"/"0" → false; anything else keeps `fallback`.
bool ParseOnOff(const char* v, bool fallback) {
  if (v == nullptr) return fallback;
  if (std::strcmp(v, "on") == 0 || std::strcmp(v, "1") == 0) return true;
  if (std::strcmp(v, "off") == 0 || std::strcmp(v, "0") == 0) return false;
  return fallback;
}

/// Policy / storage spellings via the library parsers; anything
/// unrecognized keeps `fallback`.
DistanceKernelPolicy ParseKernel(const char* v, DistanceKernelPolicy fallback) {
  DistanceKernelPolicy out = fallback;
  if (v != nullptr) ParseDistanceKernelPolicy(v, &out);
  return out;
}

DistanceStorage ParseStorage(const char* v, DistanceStorage fallback) {
  DistanceStorage out = fallback;
  if (v != nullptr) ParseDistanceStorage(v, &out);
  return out;
}

}  // namespace

BenchOptions ParseBenchOptions(int argc, char** argv) {
  BenchOptions o;
  o.trials = static_cast<int>(EnvLong("CVCP_TRIALS", o.trials));
  o.aloi_datasets = static_cast<std::size_t>(
      EnvLong("CVCP_ALOI_DATASETS", static_cast<long>(o.aloi_datasets)));
  o.n_folds = static_cast<int>(EnvLong("CVCP_FOLDS", o.n_folds));
  o.seed = static_cast<uint64_t>(EnvLong("CVCP_SEED",
                                         static_cast<long>(o.seed)));
  o.threads = static_cast<int>(EnvLong("CVCP_THREADS", o.threads));
  o.trial_threads =
      static_cast<int>(EnvLong("CVCP_TRIAL_THREADS", o.trial_threads));
  o.nesting = ParseScheduler(std::getenv("CVCP_SCHEDULER"), o.nesting);
  o.cache = ParseOnOff(std::getenv("CVCP_CACHE"), o.cache);
  if (const char* v = std::getenv("CVCP_TIMINGS_FILE");
      v != nullptr && *v != '\0') {
    o.timings_file = v;
  }
  if (const char* v = std::getenv("CVCP_STORE"); v != nullptr && *v != '\0') {
    o.store_dir = v;
  }
  o.store_capacity_mb = static_cast<int>(
      EnvLong("CVCP_STORE_CAPACITY_MB", o.store_capacity_mb));
  o.distance_kernel =
      ParseKernel(std::getenv("CVCP_DISTANCE_KERNEL"), o.distance_kernel);
  o.distance_storage =
      ParseStorage(std::getenv("CVCP_DISTANCE_STORAGE"), o.distance_storage);
  for (int i = 1; i < argc; ++i) {
    auto next_long = [&](long fallback) {
      return i + 1 < argc ? std::strtol(argv[++i], nullptr, 10) : fallback;
    };
    if (std::strcmp(argv[i], "--paper") == 0) {
      o.trials = 50;
      o.aloi_datasets = 100;
      o.n_folds = 10;
    } else if (std::strcmp(argv[i], "--trials") == 0) {
      o.trials = static_cast<int>(next_long(o.trials));
    } else if (std::strcmp(argv[i], "--aloi") == 0) {
      o.aloi_datasets = static_cast<std::size_t>(next_long(
          static_cast<long>(o.aloi_datasets)));
    } else if (std::strcmp(argv[i], "--folds") == 0) {
      o.n_folds = static_cast<int>(next_long(o.n_folds));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      o.seed = static_cast<uint64_t>(next_long(static_cast<long>(o.seed)));
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      o.threads = static_cast<int>(next_long(o.threads));
    } else if (std::strcmp(argv[i], "--trial-threads") == 0) {
      o.trial_threads = static_cast<int>(next_long(o.trial_threads));
    } else if (std::strcmp(argv[i], "--scheduler") == 0) {
      if (i + 1 < argc) o.nesting = ParseScheduler(argv[++i], o.nesting);
    } else if (std::strcmp(argv[i], "--cache") == 0) {
      if (i + 1 < argc) o.cache = ParseOnOff(argv[++i], o.cache);
    } else if (std::strcmp(argv[i], "--timings-file") == 0) {
      if (i + 1 < argc) o.timings_file = argv[++i];
    } else if (std::strcmp(argv[i], "--store") == 0) {
      if (i + 1 < argc) o.store_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--store-capacity-mb") == 0) {
      o.store_capacity_mb = static_cast<int>(next_long(o.store_capacity_mb));
    } else if (std::strcmp(argv[i], "--distance-kernel") == 0) {
      if (i + 1 < argc) o.distance_kernel = ParseKernel(argv[++i],
                                                        o.distance_kernel);
    } else if (std::strcmp(argv[i], "--distance-storage") == 0) {
      if (i + 1 < argc) o.distance_storage = ParseStorage(argv[++i],
                                                          o.distance_storage);
    }
  }
  if (o.trials < 2) o.trials = 2;  // paired t-test needs >= 2
  if (o.n_folds < 2) o.n_folds = 2;
  if (o.aloi_datasets < 1) o.aloi_datasets = 1;
  if (o.threads < 0) o.threads = 0;  // 0 = all hardware threads
  if (o.trial_threads < 0) o.trial_threads = 0;  // 0 = automatic split
  if (o.store_capacity_mb < 1) o.store_capacity_mb = 1;
  if (o.distance_kernel == DistanceKernelPolicy::kDefault) {
    o.distance_kernel = DefaultDistanceKernelPolicy();
  }
  // The per-context policy (threaded through TrialSpec/ExecutionContext)
  // is the real config; aligning the process default with it makes any
  // stray kDefault resolution in library helpers agree with the run.
  SetDefaultDistanceKernelPolicy(o.distance_kernel);
  return o;
}

void PrintBanner(const BenchOptions& options, const std::string& title,
                 const std::string& paper_ref) {
  std::printf("=== %s ===\n", title.c_str());
  std::printf("reproduces: %s (Pourrajabi et al., EDBT 2014)\n",
              paper_ref.c_str());
  char threads[64];
  if (options.threads > 0) {
    std::snprintf(threads, sizeof(threads), "%d threads", options.threads);
  } else {
    std::snprintf(threads, sizeof(threads), "all hardware threads");
  }
  char lanes[64];
  if (options.trial_threads == 0) {
    std::snprintf(lanes, sizeof(lanes), "auto trial lanes");
  } else if (options.trial_threads == 1) {
    std::snprintf(lanes, sizeof(lanes), "serial trials");
  } else {
    std::snprintf(lanes, sizeof(lanes), "%d trial lanes",
                  options.trial_threads);
  }
  const char* scheduler =
      options.nesting == NestingPolicy::kNested ? "nested" : "split";
  std::printf(
      "scale: %d trials, %zu ALOI sets, %d-fold CV, seed %llu, %s, %s, "
      "%s scheduler, cache %s, %s kernels, %s distances "
      "(--paper for full scale)\n\n",
      options.trials, options.aloi_datasets, options.n_folds,
      static_cast<unsigned long long>(options.seed), threads, lanes,
      scheduler, options.cache ? "on" : "off",
      DistanceKernelPolicyName(options.distance_kernel),
      DistanceStorageName(options.distance_storage));
}

Result<std::vector<CvCellTiming>> LoadCellTimings(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) {
    return Status::NotFound(Format("cannot open timings file %s",
                                   path.c_str()));
  }
  std::vector<CvCellTiming> timings;
  char line[256];
  int line_no = 0;
  while (std::fgets(line, sizeof(line), file) != nullptr) {
    ++line_no;
    // Skip blank lines and comments.
    const char* p = line;
    while (*p == ' ' || *p == '\t') ++p;
    if (*p == '\0' || *p == '\n' || *p == '#') continue;
    CvCellTiming timing;
    if (std::sscanf(p, "%d,%d,%lf", &timing.param, &timing.fold,
                    &timing.wall_ms) != 3) {
      std::fclose(file);
      return Status::InvalidArgument(
          Format("malformed timings line %d in %s", line_no, path.c_str()));
    }
    timings.push_back(timing);
  }
  std::fclose(file);
  return timings;
}

Status SaveCellTimings(const std::string& path,
                       const std::vector<CvCellTiming>& timings) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::InvalidArgument(
        Format("cannot write timings file %s", path.c_str()));
  }
  std::fprintf(file, "# param,fold,wall_ms (CvcpReport::cell_timings)\n");
  for (const CvCellTiming& timing : timings) {
    // %.17g round-trips doubles, so reload == save exactly.
    std::fprintf(file, "%d,%d,%.17g\n", timing.param, timing.fold,
                 timing.wall_ms);
  }
  const bool write_failed = std::ferror(file) != 0;
  std::fclose(file);
  if (write_failed) {
    return Status::Internal(Format("short write to %s", path.c_str()));
  }
  return Status::OK();
}

}  // namespace cvcp::bench
