#ifndef CVCP_BENCH_HARNESS_OPTIONS_H_
#define CVCP_BENCH_HARNESS_OPTIONS_H_

/// \file
/// Scale options for the paper-reproduction benches. Defaults are reduced
/// so the whole suite runs in minutes on a laptop; `--paper` (or the env
/// vars) restores the paper's scale (50 trials, 100 ALOI datasets,
/// 10-fold CV).

#include <cstdint>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/status.h"
#include "core/cross_validation.h"

namespace cvcp::bench {

/// Runtime scale of a bench binary.
struct BenchOptions {
  int trials = 5;             ///< paper: 50   (env CVCP_TRIALS)
  std::size_t aloi_datasets = 10;  ///< paper: 100  (env CVCP_ALOI_DATASETS)
  int n_folds = 5;            ///< paper: "typically 10" (env CVCP_FOLDS)
  uint64_t seed = 20140324;   ///< EDBT 2014 start date (env CVCP_SEED)
  /// CVCP execution-engine threads; 0 = all hardware threads. Results are
  /// identical for any value (env CVCP_THREADS).
  int threads = 0;
  /// Outer-lane width for the experiment loops (trials / ALOI datasets):
  /// 0 = automatic, 1 = serial outer loops (whole budget to the CVCP
  /// cells), N > 1 = N outer lanes (capped at the budget and, under the
  /// nested scheduler, at the loop's size). Results are identical for any
  /// value (env CVCP_TRIAL_THREADS).
  int trial_threads = 0;
  /// Budget-sharing policy across nesting levels: kNested (default,
  /// "nested") = outer lanes × inner width ≈ budget with
  /// help-while-waiting balancing; kSplit ("split") = the whole budget at
  /// one level. Results are identical for either (env CVCP_SCHEDULER).
  NestingPolicy nesting = NestingPolicy::kNested;
  /// Per-dataset compute cache (core/dataset_cache.h): share the
  /// supervision-independent structures across folds, grid values, and
  /// trials. Results are byte-identical on or off; off restores the
  /// recompute-per-cell behavior for comparison (env CVCP_CACHE, "on" /
  /// "off" / "1" / "0").
  bool cache = true;
  /// Path for persisting measured per-cell wall times across bench
  /// invocations: loaded (if the file exists) into the cell cost model so
  /// the measured-longest-first schedule survives process restarts, and
  /// saved by benches that collect timings (bench_micro). Empty = no
  /// persistence (env CVCP_TIMINGS_FILE).
  std::string timings_file;
  /// Directory of the persistent artifact store (core/artifact_store.h):
  /// condensed distance matrices and OPTICS models are written there and
  /// loaded back on later runs — a second process on a warm directory
  /// performs zero OPTICS rebuilds for cached keys. Results are
  /// byte-identical cold or warm. Empty = no disk tier
  /// (env CVCP_STORE, flag `--store DIR`).
  std::string store_dir;
  /// Capacity of the run-wide shared memory cache tier in MiB; artifacts
  /// past the bound are evicted least-recently-used and transparently
  /// reloaded or recomputed (env CVCP_STORE_CAPACITY_MB,
  /// flag `--store-capacity-mb N`).
  int store_capacity_mb = 256;
  /// Distance-kernel policy for every distance computed by the run:
  /// "fixed" (default; SIMD-dispatched fixed-lane kernels, byte-identical
  /// across scalar/AVX2/NEON and any thread count), "scalar-legacy"
  /// (pre-SIMD left-to-right sums), or "unrolled" (4-accumulator unroll;
  /// neither matches the other two bitwise). Applied both process-wide
  /// (the default every kDefault resolution sees) and on the execution
  /// context threaded through the engine (env CVCP_DISTANCE_KERNEL,
  /// flag `--distance-kernel`).
  DistanceKernelPolicy distance_kernel = DistanceKernelPolicy::kFixedLane;
  /// Condensed distance-matrix storage: "f64" (default, bit-exact) or
  /// "f32" (half the bytes; distances are computed in f64 and rounded
  /// once on store). f32 runs keep their artifacts in a disjoint key
  /// space, so mixed-mode store directories never cross-serve
  /// (env CVCP_DISTANCE_STORAGE, flag `--distance-storage`).
  DistanceStorage distance_storage = DistanceStorage::kF64;
};

/// Parses env vars, then `--paper` / `--trials N` / `--aloi N` /
/// `--folds N` / `--seed N` / `--threads N` / `--trial-threads N` /
/// `--scheduler nested|split` / `--cache on|off` / `--timings-file PATH` /
/// `--store DIR` / `--store-capacity-mb N` /
/// `--distance-kernel fixed|scalar-legacy|unrolled` /
/// `--distance-storage f64|f32` flags (flags win). Also applies the
/// distance-kernel choice process-wide (SetDefaultDistanceKernelPolicy),
/// so kDefault resolutions anywhere in the process agree with the
/// explicit per-context policy.
BenchOptions ParseBenchOptions(int argc, char** argv);

/// One-line banner describing the reproduction target and the scale.
void PrintBanner(const BenchOptions& options, const std::string& title,
                 const std::string& paper_ref);

/// Loads per-cell timings saved by SaveCellTimings ("param,fold,wall_ms"
/// CSV lines). Errors with kNotFound when the file does not exist and
/// kInvalidArgument on malformed lines.
Result<std::vector<CvCellTiming>> LoadCellTimings(const std::string& path);

/// Saves per-cell timings (e.g. CvcpReport::cell_timings) so a later
/// invocation can feed them to CellCostModel::prior_timings via
/// `--timings-file`. Overwrites the file.
Status SaveCellTimings(const std::string& path,
                       const std::vector<CvCellTiming>& timings);

}  // namespace cvcp::bench

#endif  // CVCP_BENCH_HARNESS_OPTIONS_H_
