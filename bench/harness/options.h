#ifndef CVCP_BENCH_HARNESS_OPTIONS_H_
#define CVCP_BENCH_HARNESS_OPTIONS_H_

/// \file
/// Scale options for the paper-reproduction benches. Defaults are reduced
/// so the whole suite runs in minutes on a laptop; `--paper` (or the env
/// vars) restores the paper's scale (50 trials, 100 ALOI datasets,
/// 10-fold CV).

#include <cstdint>
#include <string>

#include "common/parallel.h"

namespace cvcp::bench {

/// Runtime scale of a bench binary.
struct BenchOptions {
  int trials = 5;             ///< paper: 50   (env CVCP_TRIALS)
  std::size_t aloi_datasets = 10;  ///< paper: 100  (env CVCP_ALOI_DATASETS)
  int n_folds = 5;            ///< paper: "typically 10" (env CVCP_FOLDS)
  uint64_t seed = 20140324;   ///< EDBT 2014 start date (env CVCP_SEED)
  /// CVCP execution-engine threads; 0 = all hardware threads. Results are
  /// identical for any value (env CVCP_THREADS).
  int threads = 0;
  /// Outer-lane width for the experiment loops (trials / ALOI datasets):
  /// 0 = automatic, 1 = serial outer loops (whole budget to the CVCP
  /// cells), N > 1 = N outer lanes (capped at the budget and, under the
  /// nested scheduler, at the loop's size). Results are identical for any
  /// value (env CVCP_TRIAL_THREADS).
  int trial_threads = 0;
  /// Budget-sharing policy across nesting levels: kNested (default,
  /// "nested") = outer lanes × inner width ≈ budget with
  /// help-while-waiting balancing; kSplit ("split") = the whole budget at
  /// one level. Results are identical for either (env CVCP_SCHEDULER).
  NestingPolicy nesting = NestingPolicy::kNested;
};

/// Parses env vars, then `--paper` / `--trials N` / `--aloi N` /
/// `--folds N` / `--seed N` / `--threads N` / `--trial-threads N` /
/// `--scheduler nested|split` flags (flags win).
BenchOptions ParseBenchOptions(int argc, char** argv);

/// One-line banner describing the reproduction target and the scale.
void PrintBanner(const BenchOptions& options, const std::string& title,
                 const std::string& paper_ref);

}  // namespace cvcp::bench

#endif  // CVCP_BENCH_HARNESS_OPTIONS_H_
