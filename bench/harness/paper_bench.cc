#include "harness/paper_bench.h"

#include <cmath>
#include <cstdio>
#include <optional>

#include "common/stats.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/dataset_cache.h"
#include "eval/boxplot.h"

namespace cvcp::bench {

namespace {

/// Level label like "5" or "10" from a fraction.
std::string LevelLabel(double level) {
  return Format("%g", level * 100.0);
}

TrialSpec SpecFor(const PaperBenchContext& ctx, BenchAlgo algo,
                  Scenario scenario, double level, int num_classes) {
  TrialSpec spec;
  spec.scenario = scenario;
  spec.level = level;
  spec.n_folds = ctx.options.n_folds;
  spec.grid = GridFor(algo, num_classes);
  spec.with_silhouette = algo != BenchAlgo::kFosc;
  spec.exec.threads = ctx.options.threads;
  spec.exec.distance_kernel = ctx.options.distance_kernel;
  spec.distance_storage = ctx.options.distance_storage;
  spec.trial_threads = ctx.options.trial_threads;
  spec.nesting = ctx.options.nesting;
  spec.use_cache = ctx.options.cache;
  spec.cache_pool = ctx.cache_pool.get();
  spec.prior_timings = ctx.prior_timings;
  return spec;
}

/// Stable per-cell seed: mixes the master seed with dataset/level ids.
uint64_t CellSeed(const PaperBenchContext& ctx, uint64_t dataset_id,
                  uint64_t level_id) {
  return Rng(ctx.options.seed).Fork(dataset_id).Fork(level_id).seed();
}

}  // namespace

PaperBenchContext MakeContext(const BenchOptions& options) {
  PaperBenchContext ctx;
  ctx.options = options;
  ctx.aloi = MakeAloiK5Collection(options.seed, options.aloi_datasets);
  ctx.suite = MakePaperSuite(options.seed);
  if (!options.timings_file.empty()) {
    auto timings = LoadCellTimings(options.timings_file);
    if (timings.ok()) {
      ctx.prior_timings = std::move(timings).value();
    } else if (timings.status().code() != StatusCode::kNotFound) {
      // A missing file is normal on the first run; anything else (e.g. a
      // corrupt file) deserves a loud note but must not kill the bench.
      std::fprintf(stderr, "ignoring timings file: %s\n",
                   timings.status().ToString().c_str());
    }
  }
  if (!options.store_dir.empty()) {
    ctx.store = std::make_unique<ArtifactStore>(options.store_dir);
  }
  ctx.cache_pool = std::make_unique<DatasetCachePool>(
      static_cast<size_t>(options.store_capacity_mb) * 1024 * 1024,
      ctx.store.get(), options.distance_storage);
  return ctx;
}

std::unique_ptr<SemiSupervisedClusterer> MakeClusterer(BenchAlgo algo) {
  switch (algo) {
    case BenchAlgo::kFosc:
      return std::make_unique<FoscOpticsDendClusterer>();
    case BenchAlgo::kMpck:
      return std::make_unique<MpckMeansClusterer>();
    case BenchAlgo::kCop:
      return std::make_unique<CopKMeansClusterer>();
  }
  return nullptr;
}

std::vector<int> GridFor(BenchAlgo algo, int num_classes) {
  if (algo == BenchAlgo::kFosc) return DefaultMinPtsGrid();
  return MakeKGrid(num_classes);
}

void RunCorrelationTable(const PaperBenchContext& ctx, BenchAlgo algo,
                         Scenario scenario,
                         const std::vector<double>& levels,
                         const std::string& caption) {
  auto clusterer = MakeClusterer(algo);
  TextTable table(caption);
  std::vector<std::string> header = {"Percent", "ALOI"};
  for (const SuiteEntry& e : ctx.suite) header.push_back(e.data.name());
  table.SetHeader(header);

  for (size_t li = 0; li < levels.size(); ++li) {
    std::vector<std::string> row = {LevelLabel(levels[li])};
    // ALOI column: mean of per-dataset correlation means.
    {
      TrialSpec spec = SpecFor(ctx, algo, scenario, levels[li], 5);
      AloiAggregate agg = RunAloiExperiment(ctx.aloi, *clusterer, spec,
                                            ctx.options.trials,
                                            CellSeed(ctx, 1000, li));
      std::vector<double> per_dataset;
      for (const CellAggregate& cell : agg.per_dataset) {
        if (!std::isnan(cell.corr_mean)) per_dataset.push_back(cell.corr_mean);
      }
      row.push_back(FormatDouble(Mean(per_dataset)));
    }
    for (size_t di = 0; di < ctx.suite.size(); ++di) {
      const SuiteEntry& entry = ctx.suite[di];
      TrialSpec spec = SpecFor(ctx, algo, scenario, levels[li],
                               entry.data.NumClasses());
      CellAggregate cell =
          RunExperiment(entry.data, *clusterer, spec, ctx.options.trials,
                        CellSeed(ctx, di, li));
      row.push_back(FormatDouble(cell.corr_mean));
    }
    table.AddRow(row);
  }
  std::fputs(table.Render().c_str(), stdout);
}

void RunPerformanceTable(const PaperBenchContext& ctx, BenchAlgo algo,
                         Scenario scenario, double level,
                         const std::string& caption) {
  auto clusterer = MakeClusterer(algo);
  const bool with_sil = algo != BenchAlgo::kFosc;

  TextTable table(caption);
  std::vector<std::string> header = {"Data sets", "CVCP", "Expected"};
  if (with_sil) header.push_back("Silhouette");
  header.push_back("sig");
  table.SetHeader(header);

  int aloi_significant = 0;
  // ALOI row.
  {
    TrialSpec spec = SpecFor(ctx, algo, scenario, level, 5);
    AloiAggregate agg = RunAloiExperiment(ctx.aloi, *clusterer, spec,
                                          ctx.options.trials,
                                          CellSeed(ctx, 1000, 0));
    aloi_significant = agg.significant_vs_expected;
    std::vector<std::string> row = {"ALOI"};
    row.push_back(FormatMeanStd(agg.pooled.cvcp_mean, agg.pooled.cvcp_std));
    row.push_back(FormatMeanStd(agg.pooled.exp_mean, agg.pooled.exp_std));
    if (with_sil) {
      row.push_back(FormatMeanStd(agg.pooled.sil_mean, agg.pooled.sil_std));
    }
    row.push_back(SigMarker(agg.pooled.cvcp_vs_exp));
    table.AddRow(row);
  }
  for (size_t di = 0; di < ctx.suite.size(); ++di) {
    const SuiteEntry& entry = ctx.suite[di];
    TrialSpec spec =
        SpecFor(ctx, algo, scenario, level, entry.data.NumClasses());
    CellAggregate cell = RunExperiment(entry.data, *clusterer, spec,
                                       ctx.options.trials, CellSeed(ctx, di, 0));
    std::vector<std::string> row = {entry.data.name()};
    row.push_back(FormatMeanStd(cell.cvcp_mean, cell.cvcp_std));
    row.push_back(FormatMeanStd(cell.exp_mean, cell.exp_std));
    if (with_sil) row.push_back(FormatMeanStd(cell.sil_mean, cell.sil_std));
    row.push_back(SigMarker(cell.cvcp_vs_exp));
    table.AddRow(row);
  }
  std::fputs(table.Render().c_str(), stdout);
  std::printf(
      "%d/%zu ALOI datasets significant (paired t-test CVCP vs Expected, "
      "alpha=0.05); '*' marks significant rows.\n",
      aloi_significant, ctx.aloi.size());
}

void RunBoxplotFigure(const PaperBenchContext& ctx, BenchAlgo algo,
                      Scenario scenario, const std::vector<double>& levels,
                      const std::string& caption) {
  auto clusterer = MakeClusterer(algo);
  const bool with_sil = algo != BenchAlgo::kFosc;
  std::printf("%s\n", caption.c_str());

  std::vector<LabeledBox> boxes;
  for (size_t li = 0; li < levels.size(); ++li) {
    TrialSpec spec = SpecFor(ctx, algo, scenario, levels[li], 5);
    AloiAggregate agg = RunAloiExperiment(ctx.aloi, *clusterer, spec,
                                          ctx.options.trials,
                                          CellSeed(ctx, 1000, li));
    const std::string lvl = LevelLabel(levels[li]);
    boxes.push_back(
        {"CVCP-" + lvl, BoxplotStats::FromSamples(agg.pooled.cvcp_values)});
    boxes.push_back(
        {"Exp-" + lvl, BoxplotStats::FromSamples(agg.pooled.exp_values)});
    if (with_sil) {
      // FromSamples drops NaNs itself and keeps the total count, so the
      // rendered "n=defined/total" shows how many trials had no pick.
      boxes.push_back(
          {"Sil-" + lvl, BoxplotStats::FromSamples(agg.pooled.sil_values)});
    }
  }
  // Shared axis across all boxes.
  double lo = 1.0, hi = 0.0;
  for (const LabeledBox& b : boxes) {
    if (b.stats.n == 0) continue;
    lo = std::min(lo, b.stats.min);
    hi = std::max(hi, b.stats.max);
  }
  if (lo >= hi) {
    lo = 0.0;
    hi = 1.0;
  }
  std::fputs(RenderBoxplots(boxes, lo, hi).c_str(), stdout);
}

namespace {

/// Per-grid-position mean of a series across trials, NaN-skipping.
std::vector<double> MeanCurve(
    const std::vector<std::vector<double>>& series) {
  if (series.empty()) return {};
  std::vector<double> out(series[0].size(), 0.0);
  for (size_t gi = 0; gi < out.size(); ++gi) {
    double sum = 0.0;
    size_t n = 0;
    for (const auto& s : series) {
      if (!std::isnan(s[gi])) {
        sum += s[gi];
        ++n;
      }
    }
    out[gi] = n > 0 ? sum / static_cast<double>(n)
                    : std::numeric_limits<double>::quiet_NaN();
  }
  return out;
}

}  // namespace

void RunCurveFigure(const PaperBenchContext& ctx, BenchAlgo algo,
                    Scenario scenario, double level,
                    const std::string& caption) {
  auto clusterer = MakeClusterer(algo);
  std::printf("%s\n", caption.c_str());

  // The paper shows curves for a representative (well-correlating) ALOI
  // member. Pick the member with the best mean per-trial correlation, then
  // plot its trial-averaged internal/external curves.
  TrialSpec spec = SpecFor(ctx, algo, scenario, level, 5);
  size_t best_idx = 0;
  double best_corr = -2.0;
  std::vector<std::vector<double>> best_internal, best_external;
  for (size_t d = 0; d < ctx.aloi.size(); ++d) {
    std::vector<std::vector<double>> internal, external;
    std::vector<double> corrs;
    Rng seed_rng(CellSeed(ctx, d, 77));
    // Same discipline as RunExperiment: front the dataset with the
    // run-wide pool when available, else a private per-dataset cache
    // (byte-identical results either way).
    std::optional<DatasetCache> local_cache;
    DatasetCache* cache_ptr = nullptr;
    if (spec.use_cache) {
      if (spec.cache_pool != nullptr) {
        cache_ptr = spec.cache_pool->For(ctx.aloi[d].points());
      } else {
        local_cache.emplace(ctx.aloi[d].points());
        cache_ptr = &*local_cache;
      }
    }
    clusterer->PrewarmCache(ctx.aloi[d], spec.grid, cache_ptr, spec.exec);
    for (int t = 0; t < ctx.options.trials; ++t) {
      TrialResult trial = RunTrial(ctx.aloi[d], *clusterer, spec,
                                   seed_rng.Fork(static_cast<uint64_t>(t))
                                       .seed(),
                                   cache_ptr);
      if (!trial.ok) continue;
      internal.push_back(trial.internal_scores);
      external.push_back(trial.external_scores);
      if (!std::isnan(trial.correlation)) corrs.push_back(trial.correlation);
    }
    if (corrs.empty()) continue;
    const double mean_corr = Mean(corrs);
    if (mean_corr > best_corr) {
      best_corr = mean_corr;
      best_idx = d;
      best_internal = internal;
      best_external = external;
    }
  }
  if (best_internal.empty()) {
    std::printf("no successful trial\n");
    return;
  }
  const std::vector<double> internal_mean = MeanCurve(best_internal);
  const std::vector<double> external_mean = MeanCurve(best_external);
  // CVCP pick on the averaged internal curve (display only).
  int display_pick = spec.grid[0];
  double display_best = -1.0;
  for (size_t gi = 0; gi < spec.grid.size(); ++gi) {
    if (!std::isnan(internal_mean[gi]) && internal_mean[gi] > display_best) {
      display_best = internal_mean[gi];
      display_pick = spec.grid[gi];
    }
  }

  const char* param_name = algo == BenchAlgo::kFosc ? "MinPts" : "k";
  TextTable table(
      Format("dataset %s — trial-averaged internal CVCP score vs external "
             "Overall F-Measure per %s (%d trials)",
             ctx.aloi[best_idx].name().c_str(), param_name,
             ctx.options.trials));
  table.SetHeader({param_name, "internal (CV F)", "external (Overall F)",
                   ""});
  for (size_t gi = 0; gi < spec.grid.size(); ++gi) {
    table.AddRow({Format("%d", spec.grid[gi]),
                  FormatDouble(internal_mean[gi]),
                  FormatDouble(external_mean[gi]),
                  spec.grid[gi] == display_pick ? "<- CVCP pick" : ""});
  }
  std::fputs(table.Render().c_str(), stdout);
  std::printf(
      "mean per-trial correlation = %s; correlation of averaged curves = %s"
      "   (paper reports ~0.94-0.99)\n",
      FormatDouble(best_corr).c_str(),
      FormatDouble(PearsonCorrelation(internal_mean, external_mean)).c_str());
}

void PrintStoreStats(const PaperBenchContext& ctx) {
  if (ctx.cache_pool == nullptr) return;
  const DatasetCache::Stats c = ctx.cache_pool->AggregateStats();
  const ShardedLruCache::Stats m = ctx.cache_pool->memory().stats();
  std::fprintf(
      stderr,
      "cache-stats: dist_builds=%llu dist_loads=%llu dist_hits=%llu "
      "model_builds=%llu model_loads=%llu model_hits=%llu model_errors=%llu "
      "lru_entries=%zu lru_charge=%zu lru_evictions=%llu\n",
      static_cast<unsigned long long>(c.distance_builds),
      static_cast<unsigned long long>(c.distance_loads),
      static_cast<unsigned long long>(c.distance_hits),
      static_cast<unsigned long long>(c.model_builds),
      static_cast<unsigned long long>(c.model_loads),
      static_cast<unsigned long long>(c.model_hits),
      static_cast<unsigned long long>(c.model_errors), m.entries, m.charge,
      static_cast<unsigned long long>(m.evictions));
  if (ctx.store == nullptr) return;
  const ArtifactStore::Stats s = ctx.store->stats();
  std::fprintf(
      stderr,
      "store-stats: dir=%s disk_hits=%llu disk_misses=%llu "
      "corrupt_misses=%llu version_misses=%llu writes=%llu "
      "write_errors=%llu bytes_read=%llu bytes_written=%llu\n",
      ctx.store->directory().c_str(),
      static_cast<unsigned long long>(s.disk_hits),
      static_cast<unsigned long long>(s.disk_misses),
      static_cast<unsigned long long>(s.corrupt_misses),
      static_cast<unsigned long long>(s.version_misses),
      static_cast<unsigned long long>(s.writes),
      static_cast<unsigned long long>(s.write_errors),
      static_cast<unsigned long long>(s.bytes_read),
      static_cast<unsigned long long>(s.bytes_written));
}

}  // namespace cvcp::bench
