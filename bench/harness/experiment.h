#ifndef CVCP_BENCH_HARNESS_EXPERIMENT_H_
#define CVCP_BENCH_HARNESS_EXPERIMENT_H_

/// \file
/// The paper's experimental protocol (§4.1), shared by every table/figure
/// bench. One *trial* =
///   1. sample supervision from the ground truth (labels: x% of objects;
///      constraints: a fraction of the 10%-per-class all-pairs pool);
///   2. run CVCP over the parameter grid (internal CV F-measure per value);
///   3. cluster with full supervision at *every* grid value; compute the
///      external Overall F-Measure on the objects not involved in the
///      supervision (and the Silhouette for centroid algorithms);
///   4. derive: per-trial internal/external correlation, the external
///      quality of the CVCP pick, the expected quality (grid mean), and
///      the Silhouette pick's quality.
/// Experiments aggregate trials (mean/std, paired t-tests at alpha=.05);
/// ALOI experiments additionally aggregate over collection members and
/// count per-dataset significance as the paper's captions do.

#include <limits>
#include <string>
#include <vector>

#include "common/dataset.h"
#include "common/stats.h"
#include "core/clusterer.h"
#include "core/cvcp.h"

namespace cvcp {
class DatasetCachePool;  // core/dataset_cache.h
}

namespace cvcp::bench {

/// Which supervision scenario a trial uses.
enum class Scenario {
  kLabels,       ///< §4.2.1/§4.3.1: x% labeled objects
  kConstraints,  ///< §4.2.2/§4.3.2: x% of the constraint pool
};

/// Static description of one experimental cell.
struct TrialSpec {
  Scenario scenario = Scenario::kLabels;
  /// Label fraction (0.05/0.10/0.20) or constraint-pool fraction
  /// (0.10/0.20/0.50).
  double level = 0.10;
  /// Per-class fraction used to build the constraint pool (paper: 0.10).
  double pool_fraction = 0.10;
  std::vector<int> grid;
  int n_folds = 5;
  /// Also select by silhouette (paper: MPCKMeans only).
  bool with_silhouette = false;
  /// Total thread budget, shared by every nesting level (ALOI datasets >
  /// trials > CVCP grid×fold cells / full-supervision sweep); any thread
  /// count yields identical results. Also carries the distance-kernel
  /// policy every stage of the trial uses.
  ExecutionContext exec;
  /// Condensed distance-matrix storage for the caches this experiment
  /// creates (a run-wide `cache_pool` brings its own mode and ignores
  /// this). kF32 halves the matrix bytes but rounds each stored distance
  /// once, so downstream scores may differ in the last ulps — the f32
  /// ablation in bench_micro measures whether CVCP's *selections* move.
  DistanceStorage distance_storage = DistanceStorage::kF64;
  /// Outer-lane width for the experiment loops (trials in RunExperiment,
  /// datasets in RunAloiExperiment): 0 = automatic (policy decides),
  /// 1 = serial outer loops (the whole budget goes to the CVCP cells, the
  /// pre-PR3 behavior), N > 1 = N outer lanes, capped at the budget and —
  /// under kNested — at the loop's own size (phantom lanes would dilute
  /// the per-lane inner share).
  int trial_threads = 0;
  /// How the budget is shared across nesting levels (PlanBudget):
  /// kNested (default) gives outer lanes × inner width ≈ budget with
  /// help-while-waiting balancing; kSplit spends it all at one level.
  /// Results are identical for either policy.
  NestingPolicy nesting = NestingPolicy::kNested;
  /// Share supervision-independent per-dataset structures (distance
  /// matrix, OPTICS models) across all folds, grid values, and trials via
  /// a per-dataset DatasetCache (core/dataset_cache.h). Results are
  /// byte-identical with the cache on or off; off recomputes everything
  /// per cell (the pre-cache behavior, kept for benchmarking).
  bool use_cache = true;
  /// Optional run-wide cache pool (one shared memory LRU + optional
  /// persistent ArtifactStore tier). When set and `use_cache` is true,
  /// `RunExperiment` fronts the dataset through `cache_pool->For(...)` —
  /// so trials at *different supervision levels*, different tables, and
  /// different datasets of a bench run share geometry, and a warm store
  /// directory satisfies model builds from disk. Null keeps the original
  /// per-experiment private cache. Results are byte-identical either way.
  DatasetCachePool* cache_pool = nullptr;
  /// Measured (param, fold) wall times fed to the cell cost model of every
  /// trial's CVCP run (CellCostModel::prior_timings) — e.g. loaded from a
  /// previous invocation via the bench `--timings-file` option. Execution
  /// order only; results are identical with or without them.
  std::vector<CvCellTiming> prior_timings;
};

/// Everything measured in one trial.
struct TrialResult {
  bool ok = false;
  std::string error;  ///< set when !ok

  std::vector<double> internal_scores;  ///< per grid value (CV F-measure)
  std::vector<double> external_scores;  ///< per grid value (Overall F)
  std::vector<double> silhouettes;      ///< per grid value (NaN if skipped)

  double correlation = 0.0;  ///< Pearson(internal, external); NaN if flat
  int cvcp_param = 0;
  /// External quality of the CVCP pick; NaN until assigned (e.g. when the
  /// pick's external F is undefined because every object is supervised).
  double cvcp_external = std::numeric_limits<double>::quiet_NaN();
  double expected_external = 0.0;
  int silhouette_param = 0;
  /// NaN when not computed.
  double silhouette_external = std::numeric_limits<double>::quiet_NaN();
};

/// Runs one trial. `trial_seed` fully determines the randomness. `cache`,
/// when non-null, is the dataset's compute cache, shared by the CVCP run,
/// the full-supervision sweep, and the silhouette evaluations (and,
/// through RunExperiment, by every concurrent trial of the dataset);
/// results are byte-identical with or without it.
TrialResult RunTrial(const Dataset& data,
                     const SemiSupervisedClusterer& clusterer,
                     const TrialSpec& spec, uint64_t trial_seed,
                     DatasetCache* cache = nullptr);

/// Aggregate of one experimental cell (dataset x level x algorithm).
/// All means/stds skip NaN entries and the paired t-tests drop pairs where
/// either side is NaN, so one trial with an undefined score degrades the
/// sample size instead of poisoning the whole cell.
struct CellAggregate {
  int trials_ok = 0;
  double corr_mean = 0.0;  ///< mean per-trial correlation (NaN-skipping)
  double cvcp_mean = 0.0, cvcp_std = 0.0;
  double exp_mean = 0.0, exp_std = 0.0;
  double sil_mean = 0.0, sil_std = 0.0;  ///< NaN when silhouette skipped
  PairedTTestResult cvcp_vs_exp{};
  PairedTTestResult cvcp_vs_sil{};

  // Per-trial series (for boxplots and pooled tests).
  std::vector<double> cvcp_values;
  std::vector<double> exp_values;
  std::vector<double> sil_values;
  std::vector<double> correlations;

  /// Recomputes every derived statistic above from the per-trial series:
  /// means/stds over the defined (non-NaN) entries of each series, paired
  /// t-tests over the positions where both sides are defined (fewer than 2
  /// such pairs leaves the "no test ran" default, which is never
  /// significant). `cvcp_vs_sil` is only computed with silhouettes on.
  void Finalize(bool with_silhouette);
};

/// Runs `trials` independent trials (seeds forked from `seed` by trial id)
/// and aggregates. Trials fan out over the execution engine according to
/// `spec.exec`/`spec.trial_threads`; seeds are pre-forked by trial id and
/// the reduction runs in trial order, so the aggregate (including error /
/// skip semantics) is byte-identical for every thread count.
CellAggregate RunExperiment(const Dataset& data,
                            const SemiSupervisedClusterer& clusterer,
                            const TrialSpec& spec, int trials, uint64_t seed);

/// ALOI-collection experiment: the cell is run per collection member; the
/// paper reports the across-collection mean and how many members had a
/// significant CVCP-vs-Expected difference. Collection members fan out on
/// the execution engine (seeds pre-forked by dataset index, reduction in
/// dataset order), so the aggregate is byte-identical for every thread
/// count.
struct AloiAggregate {
  std::vector<CellAggregate> per_dataset;
  int significant_vs_expected = 0;  ///< paired t-test per dataset, alpha=.05
  int significant_vs_silhouette = 0;
  /// All trial values pooled over the collection (Figures 9-12 boxplots).
  CellAggregate pooled;
};

AloiAggregate RunAloiExperiment(const std::vector<Dataset>& collection,
                                const SemiSupervisedClusterer& clusterer,
                                const TrialSpec& spec, int trials,
                                uint64_t seed);

/// "0.7489 ±0.0531"-style cell text.
std::string FormatMeanStd(double mean, double stddev);

/// Significance marker for a table cell: "*" when p < 0.05.
std::string SigMarker(const PairedTTestResult& test);

}  // namespace cvcp::bench

#endif  // CVCP_BENCH_HARNESS_EXPERIMENT_H_
