#ifndef CVCP_BENCH_HARNESS_PAPER_BENCH_H_
#define CVCP_BENCH_HARNESS_PAPER_BENCH_H_

/// \file
/// Shared assembly for the per-table / per-figure bench binaries: the
/// dataset suite (ALOI-like collection + Iris + four simulated UCI/Zyeast
/// stand-ins) and printers that lay results out in the same row/column
/// shape as the paper's Tables 1-16 and Figures 5-12.

#include <memory>
#include <string>
#include <vector>

#include "core/clusterer.h"
#include "core/dataset_cache.h"
#include "data/paper_suites.h"
#include "harness/experiment.h"
#include "harness/options.h"

namespace cvcp::bench {

/// Which algorithm a bench sweeps (decides the grid and the Silhouette
/// column).
enum class BenchAlgo {
  kFosc,  ///< FOSC-OPTICSDend over the MinPts grid
  kMpck,  ///< MPCKMeans over the k grid
  kCop,   ///< COP-KMeans over the k grid (extension)
};

/// All datasets of the paper's evaluation, pre-generated at bench scale.
struct PaperBenchContext {
  BenchOptions options;
  std::vector<Dataset> aloi;       ///< the ALOI-k5-like collection
  std::vector<SuiteEntry> suite;   ///< Iris, Wine-, Ionosphere-, Ecoli-, Zyeast-like
  /// Measured per-cell wall times loaded from options.timings_file (empty
  /// when the option is unset or the file is missing); fed into every
  /// trial's cell cost model so the measured-longest-first schedule
  /// survives process restarts. Execution order only — results are
  /// identical with or without them.
  std::vector<CvCellTiming> prior_timings;
  /// Persistent artifact tier (options.store_dir); null when no --store
  /// directory was configured. Owned by the context so one store serves
  /// every table/figure of the binary.
  std::unique_ptr<ArtifactStore> store;
  /// Run-wide compute-cache pool: one shared memory LRU
  /// (options.store_capacity_mb) in front of `store`, shared by every
  /// experiment, supervision level, and dataset the binary touches.
  std::unique_ptr<DatasetCachePool> cache_pool;
};

/// Generates the context from the options (deterministic in options.seed).
PaperBenchContext MakeContext(const BenchOptions& options);

/// Instantiates the clusterer for an algorithm.
std::unique_ptr<SemiSupervisedClusterer> MakeClusterer(BenchAlgo algo);

/// Grid for `algo` on a dataset with `num_classes` classes.
std::vector<int> GridFor(BenchAlgo algo, int num_classes);

/// Tables 1-4: average per-trial correlation of internal CV scores with the
/// external Overall F-Measure; rows = levels, columns = datasets (ALOI
/// column averaged over the collection).
void RunCorrelationTable(const PaperBenchContext& ctx, BenchAlgo algo,
                         Scenario scenario,
                         const std::vector<double>& levels,
                         const std::string& caption);

/// Tables 5-16: mean +- std of CVCP / Expected (/ Silhouette) external
/// quality at one supervision level; paired t-test significance markers and
/// the ALOI "x/N significant" caption.
void RunPerformanceTable(const PaperBenchContext& ctx, BenchAlgo algo,
                         Scenario scenario, double level,
                         const std::string& caption);

/// Figures 9-12: ASCII boxplots of the pooled ALOI quality distributions
/// for CVCP-x / Exp-x (/ Sil-x) at each level.
void RunBoxplotFigure(const PaperBenchContext& ctx, BenchAlgo algo,
                      Scenario scenario, const std::vector<double>& levels,
                      const std::string& caption);

/// Figures 5-8: internal-vs-external score curves over the grid for one
/// representative ALOI dataset (single trial), plus the correlation.
void RunCurveFigure(const PaperBenchContext& ctx, BenchAlgo algo,
                    Scenario scenario, double level,
                    const std::string& caption);

/// Prints the run's cache/store effectiveness counters to *stderr* — one
/// `cache-stats:` line, plus a `store-stats:` line when a disk tier is
/// configured — so stdout's table bytes stay identical across cache and
/// store configurations. CI's warm-start smoke greps these lines to prove
/// a warm store served every model (model_builds=0, disk_hits>0).
void PrintStoreStats(const PaperBenchContext& ctx);

}  // namespace cvcp::bench

#endif  // CVCP_BENCH_HARNESS_PAPER_BENCH_H_
