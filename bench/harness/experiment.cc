#include "harness/experiment.h"

#include <cmath>
#include <limits>

#include <optional>

#include "cluster/silhouette.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/strings.h"
#include "constraints/oracle.h"
#include "core/dataset_cache.h"
#include "core/selectors.h"
#include "eval/external_measures.h"

namespace cvcp::bench {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// Pearson correlation over positions where both series are defined.
double NanAwareCorrelation(const std::vector<double>& x,
                           const std::vector<double>& y) {
  std::vector<double> xs, ys;
  for (size_t i = 0; i < x.size(); ++i) {
    if (!std::isnan(x[i]) && !std::isnan(y[i])) {
      xs.push_back(x[i]);
      ys.push_back(y[i]);
    }
  }
  if (xs.size() < 2) return kNaN;
  return PearsonCorrelation(xs, ys);
}

double NanAwareMean(const std::vector<double>& v) {
  double sum = 0.0;
  size_t n = 0;
  for (double x : v) {
    if (!std::isnan(x)) {
      sum += x;
      ++n;
    }
  }
  return n > 0 ? sum / static_cast<double>(n) : kNaN;
}

double NanAwareStdDev(const std::vector<double>& v) {
  std::vector<double> defined;
  defined.reserve(v.size());
  for (double x : v) {
    if (!std::isnan(x)) defined.push_back(x);
  }
  return SampleStdDev(defined);
}

/// Paired t-test over positions where both series are defined; a
/// default-constructed ("no test") result when fewer than 2 pairs remain.
PairedTTestResult NanAwarePairedTTest(const std::vector<double>& a,
                                      const std::vector<double>& b) {
  std::vector<double> as, bs;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!std::isnan(a[i]) && !std::isnan(b[i])) {
      as.push_back(a[i]);
      bs.push_back(b[i]);
    }
  }
  if (as.size() < 2) return PairedTTestResult{};
  return PairedTTest(as, bs);
}

}  // namespace

void CellAggregate::Finalize(bool with_silhouette) {
  corr_mean = NanAwareMean(correlations);
  cvcp_mean = NanAwareMean(cvcp_values);
  cvcp_std = NanAwareStdDev(cvcp_values);
  exp_mean = NanAwareMean(exp_values);
  exp_std = NanAwareStdDev(exp_values);
  sil_mean = NanAwareMean(sil_values);
  sil_std = NanAwareStdDev(sil_values);
  cvcp_vs_exp = NanAwarePairedTTest(cvcp_values, exp_values);
  if (with_silhouette) {
    cvcp_vs_sil = NanAwarePairedTTest(cvcp_values, sil_values);
  }
}

TrialResult RunTrial(const Dataset& data,
                     const SemiSupervisedClusterer& clusterer,
                     const TrialSpec& spec, uint64_t trial_seed,
                     DatasetCache* cache) {
  TrialResult out;
  Rng rng(trial_seed);

  // 1. Sample this trial's supervision.
  Supervision supervision = Supervision::FromConstraints(ConstraintSet{});
  Rng oracle_rng = rng.Fork(1);
  if (spec.scenario == Scenario::kLabels) {
    auto labeled = SampleLabeledObjects(data, spec.level, &oracle_rng);
    if (!labeled.ok()) {
      out.error = labeled.status().ToString();
      return out;
    }
    supervision = Supervision::FromLabels(data, std::move(labeled).value());
  } else {
    auto pool = BuildConstraintPool(data, spec.pool_fraction, &oracle_rng);
    if (!pool.ok()) {
      out.error = pool.status().ToString();
      return out;
    }
    auto sampled = SampleConstraints(pool.value(), spec.level, &oracle_rng);
    if (!sampled.ok()) {
      out.error = sampled.status().ToString();
      return out;
    }
    supervision = Supervision::FromConstraints(std::move(sampled).value());
  }

  // 2. CVCP internal scores over the grid.
  CvcpConfig config;
  config.cv.n_folds = spec.n_folds;
  config.cv.exec = spec.exec;
  config.cv.cost.prior_timings = spec.prior_timings;
  config.param_grid = spec.grid;
  Rng cvcp_rng = rng.Fork(2);
  auto report = RunCvcp(data, supervision, clusterer, config, &cvcp_rng,
                        cache);
  if (!report.ok()) {
    out.error = report.status().ToString();
    return out;
  }
  out.internal_scores.reserve(spec.grid.size());
  for (const CvcpParamScore& s : report->scores) {
    out.internal_scores.push_back(s.score);
  }
  out.cvcp_param = report->best_param;

  // 3. Full-supervision clustering at every grid value; external Overall F
  //    on the non-involved objects; silhouette if requested. All selectors
  //    are evaluated on these same candidate clusterings.
  const std::vector<bool> exclude = supervision.InvolvementMask(data.size());
  Rng sweep_rng = rng.Fork(3);
  out.external_scores.assign(spec.grid.size(), kNaN);
  out.silhouettes.assign(spec.grid.size(), kNaN);
  // Grid values are independent full-dataset runs; fan them out on the
  // same engine as the CVCP cells. RNGs are pre-forked in grid order and
  // each iteration writes only its own slots, so results are identical to
  // the serial sweep; the first error in grid order wins.
  std::vector<Rng> run_rngs;
  run_rngs.reserve(spec.grid.size());
  for (size_t gi = 0; gi < spec.grid.size(); ++gi) {
    run_rngs.push_back(sweep_rng.Fork(gi));
  }
  std::vector<Status> sweep_errors(spec.grid.size());
  FirstErrorTracker first_error(spec.grid.size());
  ParallelFor(spec.exec, spec.grid.size(), [&](size_t gi) {
    if (first_error.ShouldSkip(gi)) return;
    Rng run_rng = run_rngs[gi];
    auto clustering =
        clusterer.Cluster(data, supervision, spec.grid[gi], &run_rng,
                          ClusterContext{cache, spec.exec});
    if (!clustering.ok()) {
      sweep_errors[gi] = clustering.status();
      first_error.Record(gi);
      return;
    }
    out.external_scores[gi] =
        OverallFMeasure(data.labels(), clustering.value(), &exclude);
    if (spec.with_silhouette) {
      // The cached matrix holds exactly the doubles the on-the-fly scan
      // computes, so the silhouettes are byte-identical either way.
      out.silhouettes[gi] =
          cache != nullptr
              ? SilhouetteCoefficient(
                    *cache->Distances(Metric::kEuclidean, spec.exec),
                    clustering.value())
              : SilhouetteCoefficient(data.points(), clustering.value(),
                                      Metric::kEuclidean,
                                      spec.exec.distance_kernel);
    }
  });
  for (const Status& status : sweep_errors) {
    if (!status.ok()) {
      out.error = status.ToString();
      return out;
    }
  }

  // 4. Derived quantities.
  out.correlation =
      NanAwareCorrelation(out.internal_scores, out.external_scores);
  out.expected_external = ExpectedQuality(out.external_scores);
  bool pick_in_grid = false;
  for (size_t gi = 0; gi < spec.grid.size(); ++gi) {
    if (spec.grid[gi] == out.cvcp_param) {
      out.cvcp_external = out.external_scores[gi];
      pick_in_grid = true;
      break;
    }
  }
  if (!pick_in_grid) {
    // Aggregating the stale default as a real score would bias the cell;
    // a pick outside the grid is a broken trial, not a zero-quality one.
    out.error = Format("CVCP picked parameter %d, which is not in the grid",
                       out.cvcp_param);
    return out;
  }
  if (spec.with_silhouette) {
    const int sil_idx = OracleIndex(out.silhouettes);
    if (sil_idx >= 0) {
      out.silhouette_param = spec.grid[static_cast<size_t>(sil_idx)];
      out.silhouette_external =
          out.external_scores[static_cast<size_t>(sil_idx)];
    } else {
      out.silhouette_external = kNaN;
    }
  } else {
    out.silhouette_external = kNaN;
  }
  out.ok = true;
  return out;
}

CellAggregate RunExperiment(const Dataset& data,
                            const SemiSupervisedClusterer& clusterer,
                            const TrialSpec& spec, int trials, uint64_t seed) {
  const size_t n_trials = trials > 0 ? static_cast<size_t>(trials) : 0;
  // Trials are independent; fan them out on the engine. Seeds are
  // pre-forked by trial id (Fork never consumes parent state, so they are
  // exactly the serial loop's seeds), each trial writes only its own
  // pre-sized slot, and the reduction below runs in trial order — the
  // aggregate is byte-identical for every thread count.
  Rng master(seed);
  std::vector<uint64_t> trial_seeds;
  trial_seeds.reserve(n_trials);
  for (size_t t = 0; t < n_trials; ++t) {
    trial_seeds.push_back(master.Fork(static_cast<uint64_t>(t)).seed());
  }
  const NestedBudget budget =
      PlanBudget(spec.exec, n_trials, spec.trial_threads, spec.nesting);
  TrialSpec trial_spec = spec;
  trial_spec.exec = budget.inner;
  // One compute cache for the dataset, shared by every trial lane: the
  // supervision-independent geometry (distances, OPTICS models) is
  // identical across trials, so the first lane to need a structure builds
  // it and everyone else reuses it. Trial results stay byte-identical —
  // the cache only changes who computes the doubles, never their values.
  // A run-wide pool (shared LRU + optional disk store) takes precedence:
  // geometry then outlives this experiment and is shared across
  // supervision levels and datasets. Otherwise fall back to a private
  // per-experiment cache.
  std::optional<DatasetCache> cache;
  DatasetCache* cache_ptr = nullptr;
  if (spec.use_cache) {
    if (spec.cache_pool != nullptr) {
      cache_ptr = spec.cache_pool->For(data.points());
    } else {
      cache.emplace(data.points(),
                    DatasetCacheTiers{nullptr, nullptr,
                                      spec.distance_storage});
      cache_ptr = &*cache;
    }
  }
  // Build (or load, on a warm store) the whole supervision-independent
  // phase up front, so the fan-out below starts with a fully warm cache
  // and the disk tier is consulted once per artifact instead of racing.
  clusterer.PrewarmCache(data, spec.grid, cache_ptr, spec.exec);
  std::vector<TrialResult> results(n_trials);
  ParallelFor(budget.outer, n_trials, [&](size_t t) {
    results[t] = RunTrial(data, clusterer, trial_spec, trial_seeds[t],
                          cache_ptr);
  });

  CellAggregate agg;
  for (const TrialResult& trial : results) {
    if (!trial.ok) continue;
    ++agg.trials_ok;
    agg.cvcp_values.push_back(trial.cvcp_external);
    agg.exp_values.push_back(trial.expected_external);
    agg.sil_values.push_back(trial.silhouette_external);
    agg.correlations.push_back(trial.correlation);
  }
  agg.Finalize(spec.with_silhouette);
  return agg;
}

AloiAggregate RunAloiExperiment(const std::vector<Dataset>& collection,
                                const SemiSupervisedClusterer& clusterer,
                                const TrialSpec& spec, int trials,
                                uint64_t seed) {
  AloiAggregate out;
  // Collection members are independent cells; same discipline as the trial
  // fan-out: seeds pre-forked by dataset index, per-dataset result slots,
  // reduction in dataset order. The trial loop inside each cell shares the
  // same budget (nested ParallelFor lanes queue on the one shared pool and
  // waiting lanes help execute them, so the pool is never oversubscribed).
  Rng master(seed);
  std::vector<uint64_t> dataset_seeds;
  dataset_seeds.reserve(collection.size());
  for (size_t d = 0; d < collection.size(); ++d) {
    dataset_seeds.push_back(master.Fork(d).seed());
  }
  const NestedBudget budget = PlanBudget(spec.exec, collection.size(),
                                         spec.trial_threads, spec.nesting);
  TrialSpec cell_spec = spec;
  cell_spec.exec = budget.inner;
  out.per_dataset.resize(collection.size());
  ParallelFor(budget.outer, collection.size(), [&](size_t d) {
    out.per_dataset[d] = RunExperiment(collection[d], clusterer, cell_spec,
                                       trials, dataset_seeds[d]);
  });

  for (const CellAggregate& cell : out.per_dataset) {
    if (cell.cvcp_vs_exp.SignificantAt(0.05)) ++out.significant_vs_expected;
    if (spec.with_silhouette && cell.cvcp_vs_sil.SignificantAt(0.05)) {
      ++out.significant_vs_silhouette;
    }
    // Pool per-trial values for collection-level stats and boxplots.
    auto& pooled = out.pooled;
    pooled.trials_ok += cell.trials_ok;
    pooled.cvcp_values.insert(pooled.cvcp_values.end(),
                              cell.cvcp_values.begin(),
                              cell.cvcp_values.end());
    pooled.exp_values.insert(pooled.exp_values.end(), cell.exp_values.begin(),
                             cell.exp_values.end());
    pooled.sil_values.insert(pooled.sil_values.end(), cell.sil_values.begin(),
                             cell.sil_values.end());
    pooled.correlations.insert(pooled.correlations.end(),
                               cell.correlations.begin(),
                               cell.correlations.end());
  }
  out.pooled.Finalize(spec.with_silhouette);
  return out;
}

std::string FormatMeanStd(double mean, double stddev) {
  if (std::isnan(mean)) return "—";
  return Format("%.4f ±%.4f", mean, stddev);
}

std::string SigMarker(const PairedTTestResult& test) {
  return test.SignificantAt(0.05) ? "*" : "";
}

}  // namespace cvcp::bench
