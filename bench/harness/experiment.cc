#include "harness/experiment.h"

#include <atomic>
#include <cmath>
#include <limits>

#include "cluster/silhouette.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/strings.h"
#include "constraints/oracle.h"
#include "core/selectors.h"
#include "eval/external_measures.h"

namespace cvcp::bench {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// Pearson correlation over positions where both series are defined.
double NanAwareCorrelation(const std::vector<double>& x,
                           const std::vector<double>& y) {
  std::vector<double> xs, ys;
  for (size_t i = 0; i < x.size(); ++i) {
    if (!std::isnan(x[i]) && !std::isnan(y[i])) {
      xs.push_back(x[i]);
      ys.push_back(y[i]);
    }
  }
  if (xs.size() < 2) return kNaN;
  return PearsonCorrelation(xs, ys);
}

double NanAwareMean(const std::vector<double>& v) {
  double sum = 0.0;
  size_t n = 0;
  for (double x : v) {
    if (!std::isnan(x)) {
      sum += x;
      ++n;
    }
  }
  return n > 0 ? sum / static_cast<double>(n) : kNaN;
}

}  // namespace

TrialResult RunTrial(const Dataset& data,
                     const SemiSupervisedClusterer& clusterer,
                     const TrialSpec& spec, uint64_t trial_seed) {
  TrialResult out;
  Rng rng(trial_seed);

  // 1. Sample this trial's supervision.
  Supervision supervision = Supervision::FromConstraints(ConstraintSet{});
  Rng oracle_rng = rng.Fork(1);
  if (spec.scenario == Scenario::kLabels) {
    auto labeled = SampleLabeledObjects(data, spec.level, &oracle_rng);
    if (!labeled.ok()) {
      out.error = labeled.status().ToString();
      return out;
    }
    supervision = Supervision::FromLabels(data, std::move(labeled).value());
  } else {
    auto pool = BuildConstraintPool(data, spec.pool_fraction, &oracle_rng);
    if (!pool.ok()) {
      out.error = pool.status().ToString();
      return out;
    }
    auto sampled = SampleConstraints(pool.value(), spec.level, &oracle_rng);
    if (!sampled.ok()) {
      out.error = sampled.status().ToString();
      return out;
    }
    supervision = Supervision::FromConstraints(std::move(sampled).value());
  }

  // 2. CVCP internal scores over the grid.
  CvcpConfig config;
  config.cv.n_folds = spec.n_folds;
  config.cv.exec = spec.exec;
  config.param_grid = spec.grid;
  Rng cvcp_rng = rng.Fork(2);
  auto report = RunCvcp(data, supervision, clusterer, config, &cvcp_rng);
  if (!report.ok()) {
    out.error = report.status().ToString();
    return out;
  }
  out.internal_scores.reserve(spec.grid.size());
  for (const CvcpParamScore& s : report->scores) {
    out.internal_scores.push_back(s.score);
  }
  out.cvcp_param = report->best_param;

  // 3. Full-supervision clustering at every grid value; external Overall F
  //    on the non-involved objects; silhouette if requested. All selectors
  //    are evaluated on these same candidate clusterings.
  const std::vector<bool> exclude = supervision.InvolvementMask(data.size());
  Rng sweep_rng = rng.Fork(3);
  out.external_scores.assign(spec.grid.size(), kNaN);
  out.silhouettes.assign(spec.grid.size(), kNaN);
  // Grid values are independent full-dataset runs; fan them out on the
  // same engine as the CVCP cells. RNGs are pre-forked in grid order and
  // each iteration writes only its own slots, so results are identical to
  // the serial sweep; the first error in grid order wins.
  std::vector<Rng> run_rngs;
  run_rngs.reserve(spec.grid.size());
  for (size_t gi = 0; gi < spec.grid.size(); ++gi) {
    run_rngs.push_back(sweep_rng.Fork(gi));
  }
  std::vector<Status> sweep_errors(spec.grid.size());
  // Lowest failing grid index; as in ScoreGridOnFolds, ascending index
  // claiming makes skipping everything above it safe and keeps the
  // reported error identical to the serial sweep's.
  std::atomic<size_t> first_error{spec.grid.size()};
  ParallelFor(spec.exec, spec.grid.size(), [&](size_t gi) {
    if (gi > first_error.load(std::memory_order_relaxed)) return;
    Rng run_rng = run_rngs[gi];
    auto clustering =
        clusterer.Cluster(data, supervision, spec.grid[gi], &run_rng);
    if (!clustering.ok()) {
      sweep_errors[gi] = clustering.status();
      size_t lowest = first_error.load(std::memory_order_relaxed);
      while (gi < lowest &&
             !first_error.compare_exchange_weak(lowest, gi,
                                                std::memory_order_relaxed)) {
      }
      return;
    }
    out.external_scores[gi] =
        OverallFMeasure(data.labels(), clustering.value(), &exclude);
    if (spec.with_silhouette) {
      out.silhouettes[gi] =
          SilhouetteCoefficient(data.points(), clustering.value());
    }
  });
  for (const Status& status : sweep_errors) {
    if (!status.ok()) {
      out.error = status.ToString();
      return out;
    }
  }

  // 4. Derived quantities.
  out.correlation =
      NanAwareCorrelation(out.internal_scores, out.external_scores);
  out.expected_external = ExpectedQuality(out.external_scores);
  for (size_t gi = 0; gi < spec.grid.size(); ++gi) {
    if (spec.grid[gi] == out.cvcp_param) {
      out.cvcp_external = out.external_scores[gi];
      break;
    }
  }
  if (spec.with_silhouette) {
    const int sil_idx = OracleIndex(out.silhouettes);
    if (sil_idx >= 0) {
      out.silhouette_param = spec.grid[static_cast<size_t>(sil_idx)];
      out.silhouette_external =
          out.external_scores[static_cast<size_t>(sil_idx)];
    } else {
      out.silhouette_external = kNaN;
    }
  } else {
    out.silhouette_external = kNaN;
  }
  out.ok = true;
  return out;
}

CellAggregate RunExperiment(const Dataset& data,
                            const SemiSupervisedClusterer& clusterer,
                            const TrialSpec& spec, int trials, uint64_t seed) {
  CellAggregate agg;
  Rng master(seed);
  for (int t = 0; t < trials; ++t) {
    const TrialResult trial =
        RunTrial(data, clusterer, spec, master.Fork(static_cast<uint64_t>(t)).seed());
    if (!trial.ok) continue;
    ++agg.trials_ok;
    agg.cvcp_values.push_back(trial.cvcp_external);
    agg.exp_values.push_back(trial.expected_external);
    agg.sil_values.push_back(trial.silhouette_external);
    agg.correlations.push_back(trial.correlation);
  }
  agg.corr_mean = NanAwareMean(agg.correlations);
  agg.cvcp_mean = Mean(agg.cvcp_values);
  agg.cvcp_std = SampleStdDev(agg.cvcp_values);
  agg.exp_mean = Mean(agg.exp_values);
  agg.exp_std = SampleStdDev(agg.exp_values);
  agg.sil_mean = NanAwareMean(agg.sil_values);
  // Std over defined silhouette values only.
  {
    std::vector<double> defined;
    for (double v : agg.sil_values) {
      if (!std::isnan(v)) defined.push_back(v);
    }
    agg.sil_std = SampleStdDev(defined);
  }
  if (agg.cvcp_values.size() >= 2) {
    agg.cvcp_vs_exp = PairedTTest(agg.cvcp_values, agg.exp_values);
    if (spec.with_silhouette) {
      std::vector<double> cv, sl;
      for (size_t i = 0; i < agg.sil_values.size(); ++i) {
        if (!std::isnan(agg.sil_values[i])) {
          cv.push_back(agg.cvcp_values[i]);
          sl.push_back(agg.sil_values[i]);
        }
      }
      if (cv.size() >= 2) agg.cvcp_vs_sil = PairedTTest(cv, sl);
    }
  }
  return agg;
}

AloiAggregate RunAloiExperiment(const std::vector<Dataset>& collection,
                                const SemiSupervisedClusterer& clusterer,
                                const TrialSpec& spec, int trials,
                                uint64_t seed) {
  AloiAggregate out;
  Rng master(seed);
  for (size_t d = 0; d < collection.size(); ++d) {
    CellAggregate cell = RunExperiment(collection[d], clusterer, spec, trials,
                                       master.Fork(d).seed());
    if (cell.cvcp_values.size() >= 2) {
      if (cell.cvcp_vs_exp.SignificantAt(0.05)) ++out.significant_vs_expected;
      if (spec.with_silhouette && cell.cvcp_vs_sil.SignificantAt(0.05)) {
        ++out.significant_vs_silhouette;
      }
    }
    // Pool per-trial values for collection-level stats and boxplots.
    auto& pooled = out.pooled;
    pooled.trials_ok += cell.trials_ok;
    pooled.cvcp_values.insert(pooled.cvcp_values.end(),
                              cell.cvcp_values.begin(),
                              cell.cvcp_values.end());
    pooled.exp_values.insert(pooled.exp_values.end(), cell.exp_values.begin(),
                             cell.exp_values.end());
    pooled.sil_values.insert(pooled.sil_values.end(), cell.sil_values.begin(),
                             cell.sil_values.end());
    pooled.correlations.insert(pooled.correlations.end(),
                               cell.correlations.begin(),
                               cell.correlations.end());
    out.per_dataset.push_back(std::move(cell));
  }
  auto& pooled = out.pooled;
  pooled.corr_mean = NanAwareMean(pooled.correlations);
  pooled.cvcp_mean = Mean(pooled.cvcp_values);
  pooled.cvcp_std = SampleStdDev(pooled.cvcp_values);
  pooled.exp_mean = Mean(pooled.exp_values);
  pooled.exp_std = SampleStdDev(pooled.exp_values);
  pooled.sil_mean = NanAwareMean(pooled.sil_values);
  {
    std::vector<double> defined;
    for (double v : pooled.sil_values) {
      if (!std::isnan(v)) defined.push_back(v);
    }
    pooled.sil_std = SampleStdDev(defined);
  }
  if (pooled.cvcp_values.size() >= 2) {
    pooled.cvcp_vs_exp = PairedTTest(pooled.cvcp_values, pooled.exp_values);
  }
  return out;
}

std::string FormatMeanStd(double mean, double stddev) {
  if (std::isnan(mean)) return "—";
  return Format("%.4f ±%.4f", mean, stddev);
}

std::string SigMarker(const PairedTTestResult& test) {
  return test.SignificantAt(0.05) ? "*" : "";
}

}  // namespace cvcp::bench
