// bench_fig07_curve_fosc_constraint: reproduces Figure 7 of the paper.
#include "harness/options.h"
#include "harness/paper_bench.h"

int main(int argc, char** argv) {
  using namespace cvcp::bench;
  const BenchOptions options = ParseBenchOptions(argc, argv);
  PrintBanner(options, "Figure 7: FOSC-OPTICSDend (constraint scenario) — internal vs external curves, representative ALOI set, 10% of pool", "Figure 7");
  PaperBenchContext ctx = MakeContext(options);
  RunCurveFigure(ctx, BenchAlgo::kFosc, Scenario::kConstraints, 0.1,
                 "Figure 7: FOSC-OPTICSDend (constraint scenario) — internal vs external curves, representative ALOI set, 10% of pool");
  PrintStoreStats(ctx);
  return 0;
}
